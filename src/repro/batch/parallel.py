"""Multi-core fan-out of the experiment hot loops, in two sharding modes.

Mode 1 — row-range sharding (:func:`mallows_sample_and_score`)
--------------------------------------------------------------
The large-batch experiments (Figs. 1, 3, 4) run one inner pipeline: draw an
``(m, n)`` batch of Mallows samples, then score every row with the batched
kernels.  Rows are mutually independent, so the batch is sharded by
contiguous row range across worker processes.  The sampler consumes exactly
one uniform double per ``(row, item)`` cell, row-major, from the caller's
generator, so each shard's worker gets a clone of the caller's bit
generator advanced to its first row's stream offset (``lo * n`` draws) —
PCG64's ``advance`` makes this O(1) — and the parent generator is advanced
past all ``m * n`` draws afterwards.  The upshot, pinned by the
equivalence tests:

* any ``n_jobs`` (including 1) produces **byte-identical** samples and
  scores under a fixed seed;
* the caller's generator ends in the **same state** as if it had drawn the
  whole batch single-process, so downstream consumers of the same stream
  (e.g. bootstrap resampling) are unaffected by the fan-out.

Bit generators without ``advance`` (e.g. MT19937) fall back to drawing the
displacement matrix in the parent and shipping row slices to the workers —
same outputs, slightly less parallel.

Mode 2 — trial sharding (:func:`run_trials`)
--------------------------------------------
The remaining experiments (the German Credit panels of Figs. 5–7, Fig. 2)
iterate a *heterogeneous* trial — subsample, solve, score — whose batches
are far too small for row sharding; they parallelize at the
``(trial_index,)`` granularity instead.  :func:`run_trials` derives one
:class:`~numpy.random.SeedSequence` child per trial from the caller's seed
(``spawn_seed_sequences`` style), so trial ``t`` sees the same stream no
matter which worker — or the serial loop — executes it.  Results are
returned in trial order, making the output **byte-identical to the serial
loop for every** ``n_jobs``.  Requests with fewer trials than workers are
clamped to ``min(n_jobs, n_trials)`` shards on the shared pool (heavy
few-repeat loops stay parallel); only a single-trial request runs inline,
after a one-time :class:`RuntimeWarning`.

Both modes share the same per-``n_jobs`` pooled ``ProcessPoolExecutor``\\ s,
reused across pipeline calls (the experiments call them in tight loops) and
shared with the experiment-level scheduler (:mod:`repro.batch.schedule`);
:func:`shutdown_workers` tears the pools down explicitly, and an ``atexit``
hook does so at interpreter exit.

Pool children never nest pools: every worker process is marked by a pool
initializer, and :func:`effective_n_jobs` — the resolution step every fan-out
entry point goes through — returns 1 inside a worker regardless of the
requested ``n_jobs``.  A batch kernel reached *from inside* a pooled trial or
work unit therefore always runs inline instead of forking grandchildren.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences

if TYPE_CHECKING:  # lazy at runtime: repro.mallows.sampling imports repro.batch
    from repro.fairness.constraints import FairnessConstraints
    from repro.groups.attributes import GroupAssignment

#: Below this many rows per worker the pool overhead dominates and the
#: pipeline runs single-process instead (output is identical either way; a
#: one-time RuntimeWarning flags the declined fan-out request).
MIN_ROWS_PER_JOB = 128

#: Keys of the one-time advisories (declined fan-outs, deprecated
#: constructors) that have already fired.  A registry (rather than one
#: boolean per call site) so test runs can wipe it wholesale between cases —
#: a module global that latches forever would both leak state across tests
#: and swallow later legitimate warnings.
_WARNED: set[str] = set()


def reset_warnings() -> None:
    """Forget which one-time advisories have fired, so the next occurrence
    of each warns again (used by the shared pytest fixture)."""
    _WARNED.clear()


def _warn_once(
    key: str,
    message: str,
    category: type[Warning] = RuntimeWarning,
    stacklevel: int = 4,
) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)


def _warn_small_batch(m: int, n_jobs: int) -> None:
    _warn_once(
        "small_batch",
        f"n_jobs={n_jobs} requested but the batch has only {m} rows "
        f"(< 2 x MIN_ROWS_PER_JOB = {2 * MIN_ROWS_PER_JOB}), so the pipeline "
        "runs single-process: at this size the worker-pool dispatch costs "
        "more than the work.  Output is identical either way.  Small-m "
        "experiment loops parallelize at the per-trial granularity instead "
        "(see ROADMAP).  This warning is shown once per reset_warnings().",
    )


def _warn_small_trials(n_trials: int, n_jobs: int) -> None:
    _warn_once(
        "small_trials",
        f"n_jobs={n_jobs} requested but the loop has only {n_trials} "
        "trial(s), so it runs inline: dispatching a single trial to the "
        "pool pays the fork/pickle overhead for nothing.  Output is "
        "identical either way.  This warning is shown once per "
        "reset_warnings().",
    )


#: Live executors keyed by worker count, reused across pipeline calls.
_EXECUTORS: dict[int, ProcessPoolExecutor] = {}

#: True in pool-child processes (set by the executor initializer); pool
#: children must never spawn pools of their own.
_IN_WORKER = False


def _mark_worker() -> None:
    """Executor initializer: flag this process as a pool child."""
    global _IN_WORKER
    _IN_WORKER = True


def _init_worker(plan: object = None) -> None:
    """Executor initializer: mark the pool child and, in chaos lanes,
    activate the fault-injection plan the parent configured.

    ``plan`` is the parent's :class:`repro.faults.InjectionPlan` (or
    ``None`` outside chaos runs); shipping it through ``initargs`` is what
    makes injection deterministic — every worker of an executor carries
    the same plan from birth, so a fault fires on the same ``(unit key,
    attempt)`` pair regardless of which worker draws the unit.
    """
    _mark_worker()
    if plan is not None:
        # Lazy: repro.faults.injection configures plans *through* this
        # module (install_plan evicts executors), so a top-level import
        # would be circular.
        from repro.faults.injection import _install_worker_plan

        _install_worker_plan(plan)  # type: ignore[arg-type]


def in_worker() -> bool:
    """Whether this process is a pool child of the shared executors."""
    return _IN_WORKER


def shard_row_ranges(m: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``m`` rows into at most ``n_shards`` contiguous ``(lo, hi)``
    ranges of near-equal size (empty ranges are dropped)."""
    if m < 0:
        raise ValueError(f"row count must be non-negative, got {m}")
    if n_shards < 1:
        raise ValueError(f"shard count must be >= 1, got {n_shards}")
    base, extra = divmod(m, n_shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request: ``-1`` means all cores, otherwise
    the value must be a positive integer."""
    if n_jobs == -1:
        import os

        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}")
    return int(n_jobs)


def effective_n_jobs(n_jobs: int) -> int:
    """:func:`resolve_n_jobs` plus the nesting guard: inside a pool child
    the answer is always 1, whatever was requested.

    ``resolve_n_jobs(-1)`` asks ``os.cpu_count()`` — a question only the
    parent should answer: a worker that resolved ``-1`` to all cores and
    forked its own pool would oversubscribe the machine ``n_jobs``-fold.
    Every fan-out entry point resolves through here, so batch kernels called
    from *inside* a pooled trial or work unit run inline by construction
    rather than by the accident of their workload sizes.
    """
    if n_jobs != 1 and in_worker():
        if n_jobs < 1 and n_jobs != -1:
            raise ValueError(
                f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}"
            )
        return 1
    return resolve_n_jobs(n_jobs)


def shutdown_workers() -> None:
    """Tear down every pooled worker process (they are lazily recreated)."""
    for executor in _EXECUTORS.values():
        executor.shutdown(wait=True, cancel_futures=True)
    _EXECUTORS.clear()


atexit.register(shutdown_workers)


def _get_executor(n_jobs: int) -> ProcessPoolExecutor:
    executor = _EXECUTORS.get(n_jobs)
    if executor is None:
        from repro.faults.injection import configured_plan  # lazy: cycle

        executor = ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_init_worker,
            initargs=(configured_plan(),),
        )
        _EXECUTORS[n_jobs] = executor
    return executor


@dataclass(frozen=True)
class MallowsBatchScores:
    """Outputs of one sharded sampling + scoring pipeline run.

    Attributes are ``None`` when the corresponding input (constraints,
    scores, ``return_orders``) was not supplied.
    """

    infeasible_index: np.ndarray | None
    ndcg: np.ndarray | None
    orders: np.ndarray | None


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to sample and score rows ``[lo, hi)``."""

    center_order: np.ndarray
    theta: float
    rows: int
    bit_generator: object | None  # advanced clone; None => displacements set
    displacements: np.ndarray | None
    groups: "GroupAssignment | None"
    constraints: "FairnessConstraints | None"
    scores: np.ndarray | None
    ndcg_k: int | None
    return_orders: bool


def _score_orders(
    orders: np.ndarray, task: _ShardTask
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    from repro.batch.kernels import batch_infeasible_index, batch_ndcg

    iis = None
    if task.constraints is not None:
        iis = batch_infeasible_index(orders, task.groups, task.constraints)
    ndcgs = None
    if task.scores is not None:
        ndcgs = batch_ndcg(orders, task.scores, k=task.ndcg_k)
    return iis, ndcgs, orders if task.return_orders else None


def _run_shard(
    task: _ShardTask,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Worker entry point: materialize the shard's rows, score them."""
    from repro.mallows.sampling import (
        _displacement_draws,
        _orders_from_displacements,
    )

    if task.displacements is not None:
        v = task.displacements
    else:
        rng = np.random.Generator(task.bit_generator)
        v = _displacement_draws(
            task.center_order.size, task.theta, task.rows, rng
        )
    orders = _orders_from_displacements(task.center_order, v)
    return _score_orders(orders, task)


def _shard_bit_generators(
    rng: np.random.Generator, ranges: Sequence[tuple[int, int]], n: int
) -> list[object] | None:
    """Clones of ``rng``'s bit generator advanced to each shard's stream
    offset, or ``None`` when the bit generator cannot ``advance``.

    On success the parent generator is advanced past the whole batch, so its
    subsequent draws match the single-process path exactly.
    """
    base = rng.bit_generator
    if not hasattr(base, "advance"):
        return None
    state = base.state
    clones: list[object] = []
    for lo, _hi in ranges:
        clone = type(base)()
        clone.state = state
        clone.advance(lo * n)
        clones.append(clone)
    base.advance(ranges[-1][1] * n)
    return clones


def mallows_sample_and_score(
    center: Ranking,
    theta: float,
    m: int,
    *,
    groups: "GroupAssignment | None" = None,
    constraints: "FairnessConstraints | None" = None,
    scores: Sequence[float] | np.ndarray | None = None,
    ndcg_k: int | None = None,
    seed: SeedLike = None,
    n_jobs: int = 1,
    return_orders: bool = False,
) -> MallowsBatchScores:
    """Draw ``m`` Mallows samples around ``center`` and score every row,
    sharded across ``n_jobs`` worker processes.

    Parameters
    ----------
    groups, constraints:
        When given (together), the per-row Two-Sided Infeasible Index is
        computed.
    scores:
        When given, the per-row NDCG against these item scores is computed
        (top ``ndcg_k``; the full ranking by default).
    seed:
        Any :data:`~repro.utils.rng.SeedLike`.  A passed-in generator is
        consumed exactly as the single-process path would consume it.
    n_jobs:
        Worker processes (``-1`` = all cores).  Output is byte-identical
        for every value.  Batches under ``2 * MIN_ROWS_PER_JOB`` rows run
        single-process regardless (pool dispatch would cost more than the
        work); a one-time :class:`RuntimeWarning` flags the declined
        request so the no-op is never silent.
    return_orders:
        Also return the ``(m, n)`` sample orders (costs inter-process
        transfer of the whole batch when sharded).
    """
    from repro.mallows.sampling import sample_mallows_batch

    if (groups is None) != (constraints is None):
        raise ValueError("groups and constraints must be supplied together")
    n_jobs = effective_n_jobs(n_jobs)
    n = len(center)
    score_array = None
    if scores is not None:
        score_array = np.asarray(scores, dtype=np.float64)

    n_shards = min(n_jobs, max(1, m // MIN_ROWS_PER_JOB)) if n > 0 else 1
    if n_shards <= 1:
        if n_jobs > 1 and 0 < m < 2 * MIN_ROWS_PER_JOB:
            _warn_small_batch(m, n_jobs)
        from repro.batch.kernels import batch_infeasible_index, batch_ndcg

        rng = as_generator(seed)
        orders = sample_mallows_batch(center, theta, m, seed=rng)
        iis = None
        if constraints is not None:
            iis = batch_infeasible_index(orders, groups, constraints)
        ndcgs = None
        if score_array is not None:
            ndcgs = batch_ndcg(orders, score_array, k=ndcg_k)
        return MallowsBatchScores(
            infeasible_index=iis,
            ndcg=ndcgs,
            orders=orders if return_orders else None,
        )

    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    rng = as_generator(seed)
    ranges = shard_row_ranges(m, n_shards)
    clones = _shard_bit_generators(rng, ranges, n)
    if clones is None:
        # Non-advanceable bit generator: draw centrally, decode remotely.
        from repro.mallows.sampling import _displacement_draws

        v = _displacement_draws(n, theta, m, rng)
        shard_rngs: list[object | None] = [None] * len(ranges)
        shard_vs: list[np.ndarray | None] = [v[lo:hi] for lo, hi in ranges]
    else:
        shard_rngs = clones
        shard_vs = [None] * len(ranges)

    tasks = [
        _ShardTask(
            center_order=center.order,
            theta=theta,
            rows=hi - lo,
            bit_generator=shard_rngs[s],
            displacements=shard_vs[s],
            groups=groups,
            constraints=constraints,
            scores=score_array,
            ndcg_k=ndcg_k,
            return_orders=return_orders,
        )
        for s, (lo, hi) in enumerate(ranges)
    ]
    executor = _get_executor(n_jobs)
    try:
        results = list(executor.map(_run_shard, tasks))
    except BrokenProcessPool:
        # Row-shard fan-out stays fail-fast (crash recovery lives at the
        # unit scheduler); the shared cleanup just evicts the dead pool.
        from repro.faults.supervisor import evict_broken_pool

        evict_broken_pool(n_jobs, executor)
        raise

    def _concat(parts: list[np.ndarray | None]) -> np.ndarray | None:
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts, axis=0)

    return MallowsBatchScores(
        infeasible_index=_concat([r[0] for r in results]),
        ndcg=_concat([r[1] for r in results]),
        orders=_concat([r[2] for r in results]),
    )


@dataclass(frozen=True)
class _TrialShard:
    """One worker's slice of a trial loop: contiguous trial indices plus the
    per-trial seed sequences and the shared payload."""

    trial_fn: Callable[..., Any]
    first_trial: int
    seeds: tuple[np.random.SeedSequence, ...]
    payload: tuple[Any, ...]


def _run_trial_shard(task: _TrialShard) -> list[Any]:
    """Worker entry point: run the shard's trials in index order."""
    return [
        task.trial_fn(task.first_trial + i, np.random.default_rng(seq), *task.payload)
        for i, seq in enumerate(task.seeds)
    ]


def run_trials(
    trial_fn: Callable[..., Any],
    n_trials: int,
    *,
    seed: SeedLike = None,
    n_jobs: int = 1,
    payload: tuple[Any, ...] = (),
) -> list[Any]:
    """Run ``trial_fn(trial_index, rng, *payload)`` for every trial, fanned
    out across ``n_jobs`` worker processes, returning results in trial order.

    This is the trial-granular twin of :func:`mallows_sample_and_score`: it
    parallelizes experiment loops whose unit of work is one *repeat* (a
    subsample + solver run, say) rather than one batch row.  Each trial gets
    its own child :class:`~numpy.random.SeedSequence` derived from ``seed``,
    so trial ``t``'s stream is a function of ``(seed, t)`` only and the
    results are **byte-identical to the serial loop for every** ``n_jobs``.

    Parameters
    ----------
    trial_fn:
        Module-level callable (it is pickled to the workers) invoked as
        ``trial_fn(trial_index, rng, *payload)``.  Its return value must be
        picklable.
    n_trials:
        Number of trials to run.
    seed:
        Any :data:`~repro.utils.rng.SeedLike`; a passed-in generator is
        consumed exactly as :func:`~repro.utils.rng.spawn_generators` would
        consume it (one 63-bit draw).
    n_jobs:
        Worker processes (``-1`` = all cores).  When ``n_trials < n_jobs``
        the fan-out is *clamped*: the trials are sharded one-per-worker
        across ``min(n_jobs, n_trials)`` workers of the shared pool, so
        heavy few-repeat loops (German Credit at ``n_repeats=5`` under
        ``--jobs -1``) still run fully parallel.  Only the truly-inline
        case — a single trial — skips the pool, after a one-time
        :class:`RuntimeWarning`.  Output is identical for every value.
    payload:
        Extra positional arguments shipped to every trial (pickled once per
        shard, not once per trial).
    """
    if n_trials < 0:
        raise ValueError(f"trial count must be non-negative, got {n_trials}")
    n_jobs = effective_n_jobs(n_jobs)
    seqs = spawn_seed_sequences(seed, n_trials)
    if n_trials == 0:
        return []
    n_shards = min(n_jobs, n_trials)
    if n_shards == 1:
        if n_jobs > 1:
            _warn_small_trials(n_trials, n_jobs)
        return [
            trial_fn(t, np.random.default_rng(seqs[t]), *payload)
            for t in range(n_trials)
        ]

    tasks = [
        _TrialShard(
            trial_fn=trial_fn,
            first_trial=lo,
            seeds=tuple(seqs[lo:hi]),
            payload=payload,
        )
        for lo, hi in shard_row_ranges(n_trials, n_shards)
    ]
    executor = _get_executor(n_jobs)
    try:
        shard_results = list(executor.map(_run_trial_shard, tasks))
    except BrokenProcessPool:
        # Trial-shard fan-out stays fail-fast too; see evict_broken_pool.
        from repro.faults.supervisor import evict_broken_pool

        evict_broken_pool(n_jobs, executor)
        raise
    return [result for shard in shard_results for result in shard]
