"""Experiment-level work scheduler: one task graph, one shared pool.

The fan-out primitives of :mod:`repro.batch.parallel` parallelize *inside*
one experiment loop — a batch of Mallows rows, a run of trials.  Whole
pipelines (``run_all``) are made of many such loops plus work that fits
neither mode: seven figure experiments, four German Credit panels, a table.
Run one loop at a time and the pipeline scales with the *widest inner loop*,
not with the machine.  This module flattens the whole pipeline into a flat
graph of independent :class:`WorkUnit`\\ s — figure experiments, panels,
per-panel repeats, per-delta trial blocks — and interleaves all of them
through the one shared process pool.

Task-graph / seed-tree contract
-------------------------------
* A :class:`WorkUnit` is an independent job: a module-level callable ``fn``,
  an optional :class:`~numpy.random.SeedSequence`, a picklable ``payload``
  tuple, a hashable ``key`` and a ``weight`` (a relative cost estimate).
  Units never depend on each other — anything sequential (bootstrap
  aggregation, report rendering) stays in the caller, downstream of
  :func:`run_units`.
* ``fn`` is invoked as ``fn(seed, *payload)`` with the unit's
  ``SeedSequence`` (or ``None``).  Randomness must come only from
  generators derived from that seed, so the unit's output is a pure
  function of ``(fn, seed, payload)`` — the property that makes the
  schedule free to run units anywhere, in any order.
* The caller derives each unit's seed from its experiment's existing seed
  tree (the same ``SeedSequence`` children the serial loop would hand that
  piece of work).  Because child sequences are addressed by index, not by
  draw order, the flattening does not perturb any stream: byte-identical
  output for every ``n_jobs`` is inherited from the seed tree, not
  re-established per experiment.
* :func:`run_units` returns ``{unit.key: result}`` in *input order*,
  whatever order the pool finished in.  Keys must be unique per call.
  :func:`iter_units` is the streaming variant: it yields each
  :class:`CompletedUnit` (result plus measured compute wall-time) **as it
  finishes**, so a consumer can overlap aggregation or response delivery
  with the tail of the schedule — the as-completed mode the serving engine
  (:meth:`repro.engine.RankingEngine.rank_many`) is built on.
* Units are submitted heaviest-``weight``-first (longest-processing-time
  order), so a late long-running panel repeat cannot serialize the tail of
  the schedule.  Weights only shape the schedule, never the results.
* The pooled path is supervised (:mod:`repro.faults`): worker crashes
  rebuild the executor and resubmit the unserved units with their original
  seeds under a bounded :class:`~repro.faults.policy.RetryPolicy`, so one
  OOM-killed worker no longer aborts a whole pipeline — and because every
  unit is a pure function of ``(fn, seed, payload)``, recovery never
  changes a digest.
* The pool is the same per-``n_jobs`` pooled executor the inner-loop
  primitives use, and pool children are barred from nesting pools
  (:func:`~repro.batch.parallel.effective_n_jobs` forces ``n_jobs=1``
  inside workers) — a unit that internally calls ``run_trials`` or
  ``mallows_sample_and_score`` simply runs that part inline.

:class:`WorkerPool` is the shareable handle for all of this: experiment
configs carry one ``pool`` and every entry point schedules through it, so a
composite pipeline funnels every unit into the same executor instead of
each experiment spinning up its own fan-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator

import numpy as np

from repro.batch.parallel import effective_n_jobs
from repro.faults.policy import RetryPolicy
from repro.faults.supervisor import FaultCounters, supervise_units


@dataclass(frozen=True)
class WorkUnit:
    """One independent job of a task graph (see the module docstring).

    Attributes
    ----------
    key:
        Hashable identity of the unit, unique within one schedule; results
        are returned keyed by it.
    fn:
        Module-level callable (pickled to the workers), invoked as
        ``fn(seed, *payload)``; its return value must be picklable.
    seed:
        The unit's private :class:`~numpy.random.SeedSequence` (or ``None``
        for deterministic units).  All of the unit's randomness must derive
        from it.
    payload:
        Extra positional arguments, pickled with the unit.
    weight:
        Relative cost estimate; heavier units are dispatched first.
    kind:
        Optional cost-class label shared by units expected to take similar
        time (e.g. ``("gc", size)`` for every German Credit repeat at one
        subsample size).  A :class:`repro.engine.costs.CostModel` keys its
        measured wall-times by it, turning the static ``weight`` guesses
        into learned dispatch weights.  ``None`` opts out of learning.
    """

    key: Hashable
    fn: Callable[..., Any]
    seed: np.random.SeedSequence | None = None
    payload: tuple[Any, ...] = ()
    weight: float = 1.0
    kind: Hashable | None = None


@dataclass(frozen=True)
class CompletedUnit:
    """One finished work unit, as yielded by :func:`iter_units`.

    ``seconds`` is the unit's measured compute wall-time — clocked inside
    the executing process around ``fn`` itself, so pool queueing and result
    pickling are excluded and the number is comparable between the inline
    and pooled paths.
    """

    key: Hashable
    result: Any
    seconds: float
    kind: Hashable | None = None


def _run_unit(fn: Callable[..., Any], seed, payload: tuple[Any, ...]) -> Any:
    """Execute one unit (in a worker or inline — identical either way)."""
    return fn(seed, *payload)


def _run_unit_timed(
    fn: Callable[..., Any], seed, payload: tuple[Any, ...]
) -> tuple[Any, float]:
    """Execute one unit and clock it (in the executing process)."""
    t0 = time.perf_counter()
    result = fn(seed, *payload)
    return result, time.perf_counter() - t0


def _check_unique_keys(units: list[WorkUnit]) -> None:
    keys = [u.key for u in units]
    if len(set(keys)) != len(keys):
        seen: set[Hashable] = set()
        dup = next(k for k in keys if k in seen or seen.add(k))
        raise ValueError(f"duplicate work-unit key: {dup!r}")


def iter_units(
    units: Iterable[WorkUnit],
    *,
    n_jobs: int = 1,
    policy: RetryPolicy | None = None,
    counters: FaultCounters | None = None,
) -> Iterator[CompletedUnit]:
    """Run every unit through the shared ``n_jobs`` pool, yielding each as a
    :class:`CompletedUnit` **as it finishes** — the streaming twin of
    :func:`run_units`.

    With ``n_jobs=1`` (or inside a pool child, or for a single unit) the
    units run inline and are yielded in input order; pooled, they arrive in
    completion order.  Either way the *set* of ``(key, result)`` pairs is
    identical, because every unit's output is a pure function of
    ``(fn, seed, payload)`` — consumers that need input order collect into a
    mapping (exactly what :func:`run_units` does), consumers that can act on
    partial results (streaming response loops, live report rendering)
    overlap their downstream work with the tail of the schedule.

    The pooled path is *supervised*: if a worker process dies
    (``BrokenProcessPool`` — a crash fault), the executor is rebuilt and
    the unserved units are resubmitted with their original seeds under
    ``policy`` (default :data:`~repro.faults.policy.DEFAULT_RETRY_POLICY`),
    which bounds attempts per unit and rebuilds per run and finally
    degrades to inline execution (or raises
    :class:`~repro.exceptions.PoolRecoveryExhausted`, per the policy).
    Retries are digest-neutral — same ``(fn, seed, payload)``, same bytes.
    Recovery activity is tallied into ``counters`` (when given) and the
    process-wide :data:`~repro.faults.supervisor.GLOBAL_FAULTS`.

    If a unit raises (an *application* fault), the failure propagates at
    the point of iteration — never retried — and every not-yet-started
    unit is cancelled.  Abandoning the iterator early
    (``close()``/``break``) likewise cancels whatever has not started.
    """
    units = list(units)
    _check_unique_keys(units)
    n_jobs = effective_n_jobs(n_jobs)
    if n_jobs == 1 or len(units) <= 1:
        for u in units:
            result, seconds = _run_unit_timed(u.fn, u.seed, u.payload)
            yield CompletedUnit(
                key=u.key, result=result, seconds=seconds, kind=u.kind
            )
        return

    for index, result, seconds in supervise_units(
        units, n_jobs=n_jobs, policy=policy, counters=counters
    ):
        u = units[index]
        yield CompletedUnit(
            key=u.key, result=result, seconds=seconds, kind=u.kind
        )


def run_units(
    units: Iterable[WorkUnit],
    *,
    n_jobs: int = 1,
    on_unit_done: Callable[[Hashable, float], None] | None = None,
    policy: RetryPolicy | None = None,
    counters: FaultCounters | None = None,
) -> dict[Hashable, Any]:
    """Run every unit, interleaved through the shared ``n_jobs`` pool.

    Returns ``{unit.key: result}`` ordered like the input units.  With
    ``n_jobs=1`` (or inside a pool child, or for a single unit) the units
    run inline in input order — the scheduled and inline paths produce
    identical mappings because every unit's output is a pure function of
    ``(fn, seed, payload)``.

    ``on_unit_done`` (when given) is called in the parent with each unit's
    key and measured compute wall-time (seconds, clocked in the executing
    process) as that unit finishes — in completion order when pooled, in
    input order inline — so callers can surface live progress and feed
    measured costs back into dispatch weights (see
    :mod:`repro.engine.costs`); it must not depend on results.  If any unit
    raises, the first failure (in completion order) propagates and every
    not-yet-started unit is cancelled rather than left running in the
    shared pool.  Worker *crashes*, by contrast, are recovered under
    ``policy`` (see :func:`iter_units`) and tallied into ``counters``.
    """
    units = list(units)
    results: dict[Hashable, Any] = {}
    for done in iter_units(
        units, n_jobs=n_jobs, policy=policy, counters=counters
    ):
        results[done.key] = done.result
        if on_unit_done is not None:
            on_unit_done(done.key, done.seconds)
    return {u.key: results[u.key] for u in units}


@dataclass(frozen=True)
class WorkerPool:
    """Shareable handle on the scheduler: an ``n_jobs`` budget plus the
    scheduling entry points, threaded through experiment configs.

    The handle is deliberately near-stateless (the executors themselves
    live in the process-wide registry of :mod:`repro.batch.parallel`,
    keyed by worker count), so it is cheap, picklable, and safe to embed
    in frozen config dataclasses: two configs built with the same handle
    schedule onto the same pool.  ``policy`` selects the crash-recovery
    budget for everything scheduled through the handle (``None`` = the
    scheduler default); ``counters`` (excluded from equality/hashing)
    optionally aims the recovery telemetry at a session-owned tally —
    engine sessions thread theirs here so ``engine.stats()`` sees
    pipeline-level recoveries too.
    """

    #: Worker processes (``-1`` = all cores); resolved at scheduling time.
    n_jobs: int = 1
    #: Crash-recovery budget (``None`` = DEFAULT_RETRY_POLICY).
    policy: RetryPolicy | None = None
    #: Session tally for recovery telemetry (identity-free: not compared).
    counters: FaultCounters | None = field(
        default=None, compare=False, repr=False
    )

    def run(
        self,
        units: Iterable[WorkUnit],
        on_unit_done: Callable[[Hashable, float], None] | None = None,
    ) -> dict[Hashable, Any]:
        """Schedule ``units`` through this pool (see :func:`run_units`)."""
        return run_units(
            units,
            n_jobs=self.n_jobs,
            on_unit_done=on_unit_done,
            policy=self.policy,
            counters=self.counters,
        )

    def iter(self, units: Iterable[WorkUnit]) -> Iterator[CompletedUnit]:
        """Stream ``units`` through this pool as they complete (see
        :func:`iter_units`)."""
        return iter_units(
            units,
            n_jobs=self.n_jobs,
            policy=self.policy,
            counters=self.counters,
        )

    def run_trials(
        self,
        trial_fn: Callable[..., Any],
        n_trials: int,
        *,
        seed=None,
        payload: tuple[Any, ...] = (),
    ) -> list[Any]:
        """Trial-granular fan-out on this pool (see
        :func:`repro.batch.parallel.run_trials`)."""
        from repro.batch.parallel import run_trials

        return run_trials(
            trial_fn, n_trials, seed=seed, n_jobs=self.n_jobs, payload=payload
        )


def pool_for(pool: WorkerPool | None, n_jobs: int) -> WorkerPool:
    """The config-resolution rule: an explicitly threaded ``pool`` wins,
    otherwise a handle on the ``n_jobs``-sized shared pool."""
    return pool if pool is not None else WorkerPool(n_jobs)
