"""Tests for GroupAssignment and proportion vectors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GroupAssignmentError, InvalidConstraintError
from repro.groups.attributes import GroupAssignment, combine_attributes
from repro.groups.proportions import proportional_bounds, relaxed_proportional_bounds


class TestGroupAssignment:
    def test_basic(self):
        ga = GroupAssignment(["b", "a", "b", "b"])
        assert ga.n_items == 4
        assert ga.n_groups == 2
        assert ga.labels == ("a", "b")
        assert ga.group_sizes.tolist() == [1, 3]

    def test_empty_raises(self):
        with pytest.raises(GroupAssignmentError):
            GroupAssignment([])

    def test_proportions_sum_to_one(self):
        ga = GroupAssignment(["x"] * 3 + ["y"] * 7)
        assert ga.proportions.sum() == pytest.approx(1.0)
        assert ga.proportions.tolist() == [0.3, 0.7]

    def test_group_of(self):
        ga = GroupAssignment(["a", "b", "a"])
        assert ga.group_of(0) == "a"
        assert ga.group_of(1) == "b"

    def test_members(self):
        ga = GroupAssignment(["a", "b", "a"])
        assert ga.members("a").tolist() == [0, 2]

    def test_unknown_label(self):
        ga = GroupAssignment(["a"])
        with pytest.raises(GroupAssignmentError):
            ga.members("zzz")

    def test_int_labels(self):
        ga = GroupAssignment([10, 20, 10])
        assert ga.n_groups == 2
        assert ga.group_of(1) == 20

    def test_indices_read_only(self):
        ga = GroupAssignment(["a", "b"])
        with pytest.raises(ValueError):
            ga.indices[0] = 1

    def test_from_indices(self):
        ga = GroupAssignment.from_indices(np.array([0, 1, 1, 0]))
        assert ga.n_groups == 2
        assert ga.group_sizes.tolist() == [2, 2]

    def test_from_indices_declared_empty_groups(self):
        ga = GroupAssignment.from_indices(np.array([0, 0]), n_groups=3)
        assert ga.n_groups == 3
        assert ga.group_sizes.tolist() == [2, 0, 0]

    def test_from_indices_out_of_range(self):
        with pytest.raises(GroupAssignmentError):
            GroupAssignment.from_indices(np.array([0, 5]), n_groups=2)

    def test_from_indices_negative(self):
        with pytest.raises(GroupAssignmentError):
            GroupAssignment.from_indices(np.array([-1, 0]))

    def test_from_indices_empty(self):
        with pytest.raises(GroupAssignmentError):
            GroupAssignment.from_indices(np.array([], dtype=np.int64))

    def test_subset_keeps_group_space(self):
        ga = GroupAssignment(["a", "b", "c", "a"])
        sub = ga.subset([0, 3])
        assert sub.n_items == 2
        assert sub.n_groups == 3  # 'b' and 'c' slots preserved
        assert sub.group_sizes.tolist() == [2, 0, 0]

    def test_equality(self):
        assert GroupAssignment(["a", "b"]) == GroupAssignment(["a", "b"])
        assert GroupAssignment(["a", "b"]) != GroupAssignment(["b", "a"])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
    def test_property_sizes_sum_to_n(self, labels):
        ga = GroupAssignment(labels)
        assert ga.group_sizes.sum() == ga.n_items


class TestCombineAttributes:
    def test_cross_product_labels(self):
        sex = GroupAssignment(["f", "m", "f", "m"])
        age = GroupAssignment(["<35", "<35", ">=35", ">=35"])
        combined = combine_attributes(sex, age)
        assert combined.n_groups == 4
        assert combined.group_of(0) == ("f", "<35")
        assert combined.group_of(3) == ("m", ">=35")

    def test_single_attribute_identity_structure(self):
        a = GroupAssignment(["x", "y"])
        c = combine_attributes(a)
        assert c.n_groups == 2

    def test_mismatched_lengths(self):
        with pytest.raises(GroupAssignmentError):
            combine_attributes(GroupAssignment(["a"]), GroupAssignment(["a", "b"]))

    def test_no_assignments(self):
        with pytest.raises(GroupAssignmentError):
            combine_attributes()

    def test_only_observed_combinations_counted(self):
        # 2x2 potential, only 2 observed.
        a = GroupAssignment(["x", "y"])
        b = GroupAssignment(["u", "v"])
        c = combine_attributes(a, b)
        assert c.n_groups == 2


class TestProportions:
    def test_proportional_bounds_equal(self):
        ga = GroupAssignment(["a"] * 2 + ["b"] * 8)
        alpha, beta = proportional_bounds(ga)
        assert np.array_equal(alpha, beta)
        assert alpha.tolist() == [0.2, 0.8]

    def test_relaxed_widen(self):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        alpha, beta = relaxed_proportional_bounds(ga, 0.2)
        assert np.all(alpha >= 0.5)
        assert np.all(beta <= 0.5)

    def test_relaxed_zero_slack(self):
        ga = GroupAssignment(["a", "b"])
        alpha, beta = relaxed_proportional_bounds(ga, 0.0)
        a2, b2 = proportional_bounds(ga)
        assert np.allclose(alpha, a2)
        assert np.allclose(beta, b2)

    def test_relaxed_invalid_slack(self):
        ga = GroupAssignment(["a", "b"])
        with pytest.raises(InvalidConstraintError):
            relaxed_proportional_bounds(ga, 1.5)

    def test_relaxed_clipped_to_unit(self):
        ga = GroupAssignment(["a"] * 9 + ["b"])
        alpha, _beta = relaxed_proportional_bounds(ga, 1.0)
        assert np.all(alpha <= 1.0)
