"""Unit and property tests for the Ranking permutation type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidPermutationError, LengthMismatchError
from repro.rankings.permutation import Ranking, all_rankings, identity, random_ranking

permutations = st.integers(min_value=0, max_value=7).map(
    lambda n: np.random.default_rng(n).permutation(n + 1)
)


class TestConstruction:
    def test_valid_order(self):
        r = Ranking([2, 0, 1])
        assert r.order.tolist() == [2, 0, 1]

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidPermutationError):
            Ranking([0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidPermutationError):
            Ranking([1, 2, 3])

    def test_rejects_negative(self):
        with pytest.raises(InvalidPermutationError):
            Ranking([-1, 0, 1])

    def test_rejects_2d(self):
        with pytest.raises(InvalidPermutationError):
            Ranking(np.array([[0, 1], [1, 0]]))

    def test_empty_ranking(self):
        r = Ranking([])
        assert len(r) == 0

    def test_accepts_integral_floats(self):
        r = Ranking(np.array([1.0, 0.0]))
        assert r.order.tolist() == [1, 0]

    def test_rejects_fractional_floats(self):
        with pytest.raises(InvalidPermutationError):
            Ranking(np.array([0.5, 1.5]))

    def test_from_positions_roundtrip(self):
        r = Ranking([2, 0, 1])
        assert Ranking.from_positions(r.positions) == r

    def test_order_is_immutable(self):
        r = Ranking([0, 1, 2])
        with pytest.raises(ValueError):
            r.order[0] = 5

    def test_input_not_aliased(self):
        arr = np.array([0, 1, 2])
        r = Ranking(arr)
        arr[0] = 99
        assert r.order.tolist() == [0, 1, 2]


class TestViews:
    def test_item_at_and_position_of_are_inverse(self):
        r = Ranking([3, 1, 0, 2])
        for pos in range(4):
            assert r.position_of(r.item_at(pos)) == pos

    def test_positions_match_paper_sigma(self):
        # sigma(i) = position of item i
        r = Ranking([2, 0, 1])
        assert r.position_of(2) == 0
        assert r.position_of(0) == 1
        assert r.position_of(1) == 2

    def test_prefix(self):
        r = Ranking([3, 1, 0, 2])
        assert r.prefix(2).tolist() == [3, 1]

    def test_prefix_clamps(self):
        r = Ranking([1, 0])
        assert r.prefix(10).tolist() == [1, 0]
        assert r.prefix(-1).tolist() == []

    def test_iter_yields_python_ints(self):
        r = Ranking([1, 0])
        items = list(r)
        assert items == [1, 0]
        assert all(isinstance(i, int) for i in items)


class TestAlgebra:
    def test_inverse_of_inverse(self):
        r = Ranking([3, 1, 0, 2])
        assert r.inverse().inverse() == r

    def test_identity_compose(self):
        r = Ranking([3, 1, 0, 2])
        e = identity(4)
        assert r.compose(e) == r
        assert e.compose(r) == r

    def test_compose_with_inverse_is_identity(self):
        r = Ranking([3, 1, 0, 2])
        assert r.compose(r.inverse()) == identity(4)

    def test_compose_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            Ranking([0, 1]).compose(Ranking([0, 1, 2]))

    def test_swap_positions(self):
        r = Ranking([0, 1, 2]).swap_positions(0, 2)
        assert r.order.tolist() == [2, 1, 0]

    def test_relabel(self):
        r = Ranking([0, 1, 2])
        mapped = r.relabel([2, 0, 1])
        assert mapped.order.tolist() == [2, 0, 1]

    def test_relabel_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            Ranking([0, 1]).relabel([0, 1, 2])


class TestDunder:
    def test_equality_and_hash(self):
        a = Ranking([1, 0, 2])
        b = Ranking([1, 0, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Ranking([0, 1, 2])

    def test_not_equal_to_other_types(self):
        assert Ranking([0, 1]) != [0, 1]

    def test_repr_roundtrip(self):
        r = Ranking([1, 0])
        assert eval(repr(r)) == r

    def test_usable_in_sets(self):
        s = {Ranking([0, 1]), Ranking([0, 1]), Ranking([1, 0])}
        assert len(s) == 2


class TestFactories:
    def test_identity(self):
        assert identity(4).order.tolist() == [0, 1, 2, 3]

    def test_identity_negative(self):
        with pytest.raises(ValueError):
            identity(-1)

    def test_random_ranking_is_valid_and_seeded(self):
        a = random_ranking(20, seed=7)
        b = random_ranking(20, seed=7)
        assert a == b
        assert sorted(a.order.tolist()) == list(range(20))

    def test_all_rankings_count(self):
        assert len(list(all_rankings(4))) == 24

    def test_all_rankings_distinct(self):
        rs = list(all_rankings(3))
        assert len(set(rs)) == 6


@given(st.permutations(list(range(6))))
def test_property_positions_inverse(order):
    r = Ranking(np.array(order))
    inv = r.positions
    assert all(inv[r.order[j]] == j for j in range(6))


@given(st.permutations(list(range(5))), st.permutations(list(range(5))))
def test_property_compose_associates_with_inverse(a, b):
    ra, rb = Ranking(np.array(a)), Ranking(np.array(b))
    # (ra ∘ rb)⁻¹ == rb⁻¹ ∘ ra⁻¹
    assert ra.compose(rb).inverse() == rb.inverse().compose(ra.inverse())
