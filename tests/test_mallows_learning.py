"""Tests for Mallows centre estimation and dispersion MLE."""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.mallows.learning import (
    estimate_center_borda,
    estimate_center_copeland,
    fit_mallows,
    fit_theta_mle,
)
from repro.mallows.model import expected_kendall_tau
from repro.mallows.sampling import sample_mallows
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, identity, random_ranking


class TestCenterEstimation:
    def test_borda_recovers_center(self):
        center = random_ranking(8, seed=1)
        samples = sample_mallows(center, theta=2.0, m=300, seed=0)
        assert estimate_center_borda(samples) == center

    def test_copeland_recovers_center(self):
        center = random_ranking(8, seed=2)
        samples = sample_mallows(center, theta=2.0, m=300, seed=0)
        assert estimate_center_copeland(samples) == center

    def test_single_ranking_is_its_own_center(self):
        r = random_ranking(6, seed=3)
        assert estimate_center_borda([r]) == r
        assert estimate_center_copeland([r]) == r

    def test_empty_raises(self):
        with pytest.raises(EstimationError):
            estimate_center_borda([])
        with pytest.raises(EstimationError):
            estimate_center_copeland([])

    def test_mixed_lengths_raise(self):
        with pytest.raises(EstimationError):
            estimate_center_borda([identity(3), identity(4)])


class TestThetaMle:
    def test_recovers_theta(self):
        center = identity(12)
        for true_theta in (0.5, 1.0, 2.0):
            samples = sample_mallows(center, true_theta, m=2000, seed=7)
            est = fit_theta_mle(samples, center)
            assert est == pytest.approx(true_theta, rel=0.15)

    def test_all_identical_gives_huge_theta(self):
        center = identity(6)
        est = fit_theta_mle([center] * 10, center)
        assert est >= 10.0

    def test_uniformlike_data_gives_zero(self):
        # Samples at reversal distance exceed the uniform mean: theta = 0.
        center = identity(6)
        rev = Ranking(np.arange(6)[::-1])
        assert fit_theta_mle([rev] * 5, center) == 0.0

    def test_solution_solves_moment_equation(self):
        center = identity(10)
        samples = sample_mallows(center, 1.3, m=500, seed=5)
        est = fit_theta_mle(samples, center)
        d_bar = np.mean([kendall_tau_distance(r, center) for r in samples])
        assert expected_kendall_tau(10, est) == pytest.approx(d_bar, abs=1e-5)

    def test_empty_raises(self):
        with pytest.raises(EstimationError):
            fit_theta_mle([], identity(3))


class TestFitMallows:
    def test_joint_fit(self):
        center = random_ranking(10, seed=8)
        samples = sample_mallows(center, 1.5, m=800, seed=9)
        model = fit_mallows(samples)
        assert model.center == center
        assert model.theta == pytest.approx(1.5, rel=0.2)

    def test_explicit_center_respected(self):
        center = identity(5)
        samples = sample_mallows(center, 1.0, m=100, seed=0)
        model = fit_mallows(samples, center=center)
        assert model.center == center
