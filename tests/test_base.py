"""Tests for the FairRankingProblem / FairRankingResult plumbing."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem, FairRankingResult
from repro.exceptions import LengthMismatchError
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.sorting import rank_by_score


class TestProblem:
    def test_from_scores_sorts(self):
        scores = np.array([0.2, 0.9, 0.5])
        problem = FairRankingProblem.from_scores(scores)
        assert problem.base_ranking == rank_by_score(scores)
        assert problem.n_items == 3

    def test_from_scores_defaults_constraints(self):
        ga = GroupAssignment(["a", "b", "a", "b"])
        problem = FairRankingProblem.from_scores(np.ones(4), ga)
        assert problem.constraints is not None
        assert problem.constraints.n_groups == 2

    def test_from_scores_no_groups_no_constraints(self):
        problem = FairRankingProblem.from_scores(np.ones(3))
        assert problem.groups is None
        assert problem.constraints is None

    def test_score_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            FairRankingProblem(base_ranking=Ranking([0, 1]), scores=np.ones(3))

    def test_group_length_mismatch(self):
        ga = GroupAssignment(["a", "b", "c"])
        with pytest.raises(LengthMismatchError):
            FairRankingProblem(base_ranking=Ranking([0, 1]), groups=ga)

    def test_require_scores(self):
        problem = FairRankingProblem(base_ranking=Ranking([0, 1]))
        with pytest.raises(ValueError):
            problem.require_scores()

    def test_require_groups(self):
        problem = FairRankingProblem(base_ranking=Ranking([0, 1]))
        with pytest.raises(ValueError):
            problem.require_groups()

    def test_require_constraints_defaults_proportional(self):
        ga = GroupAssignment(["a", "b"])
        problem = FairRankingProblem(base_ranking=Ranking([0, 1]), groups=ga)
        fc = problem.require_constraints()
        assert fc.alpha.tolist() == [0.5, 0.5]

    def test_explicit_constraints_respected(self):
        ga = GroupAssignment(["a", "b"])
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.0, 0.0])
        problem = FairRankingProblem(
            base_ranking=Ranking([0, 1]), groups=ga, constraints=fc
        )
        assert problem.require_constraints() is fc

    def test_scores_coerced_to_float(self):
        problem = FairRankingProblem(
            base_ranking=Ranking([0, 1]), scores=np.array([1, 2])
        )
        assert problem.scores.dtype == np.float64


class TestResult:
    def test_metadata_default_empty(self):
        r = FairRankingResult(ranking=Ranking([0, 1]), algorithm="x")
        assert r.metadata == {}

    def test_callable_protocol(self):
        from repro.algorithms.mallows_postprocess import MallowsFairRanking

        problem = FairRankingProblem.from_scores(np.array([0.9, 0.1]))
        alg = MallowsFairRanking(1.0)
        assert alg(problem, seed=0).ranking == alg.rank(problem, seed=0).ranking

    def test_repr_contains_name(self):
        from repro.algorithms.detconstsort import DetConstSort

        assert "detconstsort" in repr(DetConstSort())
