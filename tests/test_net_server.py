"""Localhost integration tests of the HTTP frontend (:mod:`repro.net`).

The sans-IO suites (``test_net_protocol.py``, ``test_net_schemas.py``)
prove the wire grammar and the schemas; this file proves the asyncio
shell end-to-end on real localhost sockets: served digests stay
byte-identical to the serial loop across worker counts, the serving
tier's structured rejections travel the wire as the *same* exception
types, violations map to their statuses, and SIGTERM drains gracefully.

Every server binds an ephemeral port (``port=0``); nothing here talks
to the outside world.
"""

from __future__ import annotations

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.engine import RankingEngine, responses_digest
from repro.exceptions import PoolRecoveryExhausted
from repro.net import AsyncHttpClient, HttpLimits, HttpRankingServer
from repro.net.client import HttpWireError
from repro.net.protocol import ResponseParser, encode_request
from repro.net.schemas import (
    dumps,
    encode_rank_request,
    loads,
    validate_error_body,
)
from repro.serve import (
    BREAKER_CLOSED,
    DeadlineExceeded,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    ServerUnhealthy,
    pin_request_seeds,
    run_load,
    synthetic_requests,
)

SEED = 20260807


def run(coro):
    """Drive one test coroutine on a fresh event loop."""
    return asyncio.run(coro)


def _serial_digest(requests, seed=SEED):
    with RankingEngine(n_jobs=1) as ref:
        return responses_digest(ref.rank_many(requests, seed=seed, n_jobs=1))


def _pinned(n=16, seed=SEED):
    return pin_request_seeds(synthetic_requests(n, seed=seed), seed=seed)


class _Frontend:
    """``async with _Frontend(...) as (server, client)`` plumbing."""

    def __init__(self, n_jobs=2, config=None, *, limits=None, **overrides):
        self._n_jobs = n_jobs
        self._config = config
        self._limits = limits
        self._overrides = overrides
        self._engine = None
        self.server = None
        self.client = None

    async def __aenter__(self):
        self._engine = RankingEngine(n_jobs=self._n_jobs)
        self.server = HttpRankingServer(
            self._engine,
            self._config,
            limits=self._limits,
            **self._overrides,
        )
        await self.server.start()
        self.client = AsyncHttpClient("127.0.0.1", self.server.port)
        return self.server, self.client

    async def __aexit__(self, *exc_info):
        await self.client.close()
        if self.server.started:
            await self.server.stop()
        self._engine.close()


class TestDigestParity:
    """The headline contract: HTTP-served == serial loop, any n_jobs."""

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_run_load_digest_matches_serial(self, n_jobs):
        requests = _pinned(16)
        expected = _serial_digest(requests)

        async def scenario():
            async with _Frontend(n_jobs=n_jobs, seed=SEED) as (server, client):
                report = await run_load(client, requests)
                assert report.served == len(requests)
                assert report.failed == report.rejected == report.expired == 0
                return report.digest()

        assert run(scenario()) == expected

    def test_rank_many_endpoint_pins_root_seed_server_side(self):
        """Unpinned batch + root seed over the wire == serial rank_many."""
        requests = synthetic_requests(8, seed=SEED)
        expected = _serial_digest(requests, seed=SEED)

        async def scenario():
            async with _Frontend(n_jobs=2) as (server, client):
                results = await client.rank_many(requests, seed=SEED)
                assert all(not isinstance(r, Exception) for r in results)
                return responses_digest(results)

        assert run(scenario()) == expected

    def test_rank_many_isolates_per_item_failures(self):
        from dataclasses import replace

        requests = _pinned(4)
        requests[2] = replace(requests[2], algorithm="no-such-algorithm")

        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                return await client.rank_many(requests)

        results = run(scenario())
        assert isinstance(results[2], HttpWireError)
        assert results[2].status == 400
        good = [r for i, r in enumerate(results) if i != 2]
        assert len(good) == 3
        # Each good item matches its own serial rank (seeds are pinned,
        # so the bad neighbour cannot perturb them).
        with RankingEngine(n_jobs=1) as ref:
            for i, response in zip((0, 1, 3), good):
                serial = list(ref.rank_many([requests[i]]))[0]
                assert np.array_equal(response.ranking.order, serial.ranking.order)


class TestOperationalEndpoints:
    def test_healthz_and_stats_on_a_healthy_server(self):
        requests = _pinned(6)

        async def scenario():
            async with _Frontend(n_jobs=2, seed=SEED) as (server, client):
                healthy, body = await client.healthz()
                assert healthy and body["status"] == "ok"
                assert body["breaker"] == BREAKER_CLOSED
                await run_load(client, requests)
                stats = await client.stats()
                return stats

        stats = run(scenario())
        assert stats["counters"]["completed"] == 6
        assert stats["counters"]["submitted"] == 6
        assert stats["breaker"] == BREAKER_CLOSED
        assert stats["draining"] is False
        assert stats["coalescing"] >= 1.0
        assert isinstance(stats["latency_percentiles"], dict)

    def test_keep_alive_connections_are_pooled_and_reused(self):
        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                await client.healthz()
                assert len(client._pool) == 1
                first = client._pool[0]
                await client.stats()
                assert len(client._pool) == 1
                assert client._pool[0] is first

        run(scenario())


class TestErrorSurface:
    def test_malformed_json_and_schema_are_400(self):
        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                status, body = await client.request_json("POST", "/v1/rank")
                assert status == 400
                assert validate_error_body(body)["code"] == "bad_request"
                status, body = await client.request_json(
                    "POST", "/v1/rank", {"version": 2}
                )
                assert status == 400
                assert "version" in validate_error_body(body)["message"]

        run(scenario())

    def test_unknown_route_404_and_wrong_method_405_with_allow(self):
        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                status, body = await client.request_json("GET", "/nope")
                assert status == 404
                assert validate_error_body(body)["code"] == "not_found"
                response = await client.request("GET", "/v1/rank")
                assert response.status == 405
                assert response.header("allow") == "POST"

        run(scenario())

    def test_oversized_body_is_413_and_closes_the_connection(self):
        async def scenario():
            async with _Frontend(
                n_jobs=1, limits=HttpLimits(max_body_bytes=64)
            ) as (server, client):
                response = await client.request(
                    "POST", "/v1/rank", b"x" * 200
                )
                assert response.status == 413
                assert response.keep_alive is False
                body = loads(response.body)
                assert validate_error_body(body)["code"] == "body_too_large"
                assert client._pool == []

        run(scenario())

    def test_oversized_headers_are_431_on_a_raw_socket(self):
        async def scenario():
            async with _Frontend(
                n_jobs=1, limits=HttpLimits(max_header_bytes=256)
            ) as (server, client):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    writer.write(
                        encode_request(
                            "GET",
                            "/healthz",
                            host=server.address,
                            extra_headers=(("X-Pad", "a" * 600),),
                        )
                    )
                    await writer.drain()
                    parser = ResponseParser()
                    events = []
                    while not events:
                        data = await reader.read(65536)
                        assert data, "server closed without answering"
                        events.extend(parser.feed(data))
                    response = events[0]
                    assert response.status == 431
                    # The violation response forces connection close.
                    assert await reader.read(65536) == b""
                finally:
                    writer.close()

        run(scenario())


class TestServingTierExceptionsOverTheWire:
    #: One request fills the budget, one fills the queue, the next is
    #: rejected; the huge window keeps the first two in flight.
    OVERLOAD = dict(
        batch_window=30.0,
        cost_budget=10.0,
        default_cost=10.0,
        max_queue_depth=1,
    )

    def test_overload_raises_real_server_overloaded_with_details(self):
        async def scenario():
            async with _Frontend(n_jobs=1, **self.OVERLOAD) as (server, client):
                requests = _pinned(3)
                inflight = [
                    asyncio.ensure_future(client.submit(requests[i]))
                    for i in range(2)
                ]
                # Let both reach the server before the probe.
                while server.inner.stats().submitted < 2:
                    await asyncio.sleep(0.005)
                with pytest.raises(ServerOverloaded) as excinfo:
                    await client.submit(requests[2])
                exc = excinfo.value
                assert exc.queue_depth == exc.max_queue_depth == 1
                assert exc.cost_budget == 10.0
                assert exc.predicted_cost == 10.0
                # The raw response carries the integer Retry-After header
                # and the precise float in the body.
                raw = await client.request(
                    "POST", "/v1/rank", dumps(encode_rank_request(requests[2]))
                )
                assert raw.status == 429
                assert raw.header("retry-after") == "1"
                inner = validate_error_body(loads(raw.body))
                assert inner["code"] == "overloaded"
                assert 0.0 < inner["retry_after_s"] <= 1.0
                await server.stop(drain=False)
                failures = await asyncio.gather(
                    *inflight, return_exceptions=True
                )
                assert all(isinstance(f, ServerClosed) for f in failures)

        run(scenario())

    def test_deadline_expiry_raises_deadline_exceeded(self):
        async def scenario():
            async with _Frontend(n_jobs=1, batch_window=30.0) as (server, client):
                with pytest.raises(DeadlineExceeded) as excinfo:
                    await client.submit(_pinned(1)[0], deadline=0.02)
                assert excinfo.value.deadline == pytest.approx(0.02)
                await server.stop(drain=False)

        run(scenario())

    def test_open_breaker_sheds_via_429_and_healthz_503(self):
        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                loop = asyncio.get_running_loop()
                crash = PoolRecoveryExhausted(
                    keys=("u",), rebuilds=1, max_rebuilds=1, max_attempts=3
                )
                server.inner._core.on_batch_aborted([], crash, loop.time())
                healthy, body = await client.healthz()
                assert not healthy
                inner = validate_error_body(body)
                assert inner["code"] == "unhealthy"
                assert inner["retry_after_s"] > 0
                assert inner["details"]["state"] != BREAKER_CLOSED
                with pytest.raises(ServerUnhealthy) as excinfo:
                    await client.submit(_pinned(1)[0])
                assert excinfo.value.retry_after > 0
                stats = await client.stats()
                assert stats["breaker"] != BREAKER_CLOSED

        run(scenario())


class TestGracefulShutdown:
    def test_sigterm_drains_queued_undispatched_requests(self):
        """``serve_forever`` + SIGTERM must serve everything already
        admitted or queued — tiny budget so most of the swarm is queued
        when the signal lands."""
        requests = _pinned(4)
        expected = _serial_digest(requests)

        async def scenario():
            async with _Frontend(
                n_jobs=1,
                seed=SEED,
                batch_window=0.0,
                max_batch_size=1,
                cost_budget=0.05,
                default_cost=0.05,
                max_queue_depth=8,
            ) as (server, client):
                forever = asyncio.ensure_future(server.serve_forever())
                inflight = [
                    asyncio.ensure_future(client.submit(r)) for r in requests
                ]
                while server.inner.stats().submitted < len(requests):
                    await asyncio.sleep(0.005)
                os.kill(os.getpid(), signal.SIGTERM)
                await forever
                assert not server.started
                responses = await asyncio.gather(*inflight)
                return responses_digest(responses)

        assert run(scenario()) == expected

    def test_stop_disconnects_idle_keep_alive_connections(self):
        async def scenario():
            async with _Frontend(n_jobs=1) as (server, client):
                await client.healthz()  # parks one idle pooled connection
                assert len(client._pool) == 1
                await server.stop()
                # The pooled socket was closed server-side; the client
                # transparently retries on a fresh connection, which now
                # has no listener to reach.
                with pytest.raises((ConnectionError, OSError)):
                    await client.healthz()

        run(scenario())
