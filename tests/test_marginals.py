"""Tests for exact Mallows position marginals and closed-form expectations."""

import numpy as np
import pytest

from repro.fairness.exposure import expected_exposure_under_mallows
from repro.groups.attributes import GroupAssignment
from repro.mallows.marginals import (
    exact_expected_exposure,
    exact_expected_ndcg,
    expected_positions,
    position_marginals,
    tune_theta_for_ndcg_exact,
)
from repro.mallows.model import MallowsModel
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking, all_rankings, identity, random_ranking
from repro.rankings.quality import idcg, ndcg, position_discounts


class TestPositionMarginals:
    def test_rows_and_columns_are_distributions(self):
        m = position_marginals(8, 0.7)
        assert np.allclose(m.sum(axis=1), 1.0)
        # Columns also sum to 1: some item occupies every position.
        assert np.allclose(m.sum(axis=0), 1.0)

    def test_theta_zero_uniform(self):
        m = position_marginals(6, 0.0)
        assert np.allclose(m, 1.0 / 6)

    def test_huge_theta_identity(self):
        m = position_marginals(6, 40.0)
        assert np.allclose(m, np.eye(6), atol=1e-10)

    def test_matches_brute_force_enumeration(self):
        n, theta = 4, 0.8
        model = MallowsModel(center=identity(n), theta=theta)
        brute = np.zeros((n, n))
        for r in all_rankings(n):
            p = model.pmf(r)
            for rank in range(n):
                brute[rank, r.position_of(rank)] += p
        assert np.allclose(position_marginals(n, theta), brute, atol=1e-12)

    def test_matches_monte_carlo(self):
        n, theta, m_samples = 7, 0.5, 20000
        center = identity(n)
        orders = sample_mallows_batch(center, theta, m_samples, seed=0)
        counts = np.zeros((n, n))
        for row in orders:
            for t, item in enumerate(row):
                counts[item, t] += 1
        empirical = counts / m_samples
        assert np.allclose(position_marginals(n, theta), empirical, atol=0.02)

    def test_trivial_sizes(self):
        assert position_marginals(0, 1.0).shape == (0, 0)
        assert position_marginals(1, 1.0).tolist() == [[1.0]]

    def test_validation(self):
        with pytest.raises(ValueError):
            position_marginals(-1, 1.0)
        with pytest.raises(ValueError):
            position_marginals(3, -1.0)

    def test_expected_positions_monotone(self):
        # Higher centre rank => larger expected final position.
        exp_pos = expected_positions(10, 1.0)
        assert np.all(np.diff(exp_pos) > 0)

    def test_expected_positions_uniform(self):
        exp_pos = expected_positions(5, 0.0)
        assert np.allclose(exp_pos, 2.0)


class TestExactExpectedNdcg:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        scores = np.sort(rng.random(8))[::-1]
        center = Ranking(np.arange(8))  # score-sorted centre
        theta = 0.6
        exact = exact_expected_ndcg(center, scores, theta)
        orders = sample_mallows_batch(center, theta, 20000, seed=1)
        disc = position_discounts(8)
        ideal = idcg(scores, 8)
        mc = float(((scores[orders] * disc[None, :]).sum(axis=1) / ideal).mean())
        assert exact == pytest.approx(mc, abs=0.004)

    def test_limits(self):
        scores = np.linspace(1.0, 0.1, 6)
        center = Ranking(np.arange(6))
        assert exact_expected_ndcg(center, scores, 40.0) == pytest.approx(1.0)
        low = exact_expected_ndcg(center, scores, 0.0)
        assert low < 1.0

    def test_monotone_in_theta_for_sorted_center(self):
        scores = np.linspace(1.0, 0.1, 7)
        center = Ranking(np.arange(7))
        values = [exact_expected_ndcg(center, scores, t) for t in (0.0, 0.5, 1.0, 3.0)]
        assert values == sorted(values)

    def test_zero_scores(self):
        assert exact_expected_ndcg(Ranking([0, 1]), np.zeros(2), 1.0) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_expected_ndcg(Ranking([0, 1]), np.ones(3), 1.0)


class TestExactExpectedExposure:
    def test_matches_monte_carlo(self):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        center = Ranking(np.arange(10))  # group a on top
        theta = 0.4
        exact = exact_expected_exposure(center, theta, ga)
        mc = expected_exposure_under_mallows(center, theta, ga, m=8000, seed=2)
        assert np.allclose(exact, mc, atol=0.01)

    def test_huge_theta_equals_center_exposure(self):
        from repro.fairness.exposure import group_exposures

        ga = GroupAssignment(["a"] * 4 + ["b"] * 4)
        center = random_ranking(8, seed=3)
        exact = exact_expected_exposure(center, 40.0, ga)
        assert np.allclose(exact, group_exposures(center, ga), atol=1e-9)

    def test_topk_cutoff(self):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        center = Ranking(np.arange(10))
        full = exact_expected_exposure(center, 1.0, ga)
        top3 = exact_expected_exposure(center, 1.0, ga, k=3)
        assert np.all(top3 <= full + 1e-12)

    def test_validation(self):
        ga = GroupAssignment(["a", "b"])
        with pytest.raises(ValueError):
            exact_expected_exposure(Ranking([0, 1, 2]), 1.0, ga)
        with pytest.raises(ValueError):
            exact_expected_exposure(Ranking([0, 1]), 1.0, ga, k=5)


class TestExactTuner:
    def test_achieves_target_exactly(self):
        scores = np.linspace(1.0, 0.1, 10)
        center = Ranking(np.arange(10))
        target = 0.95
        theta = tune_theta_for_ndcg_exact(center, scores, target)
        assert exact_expected_ndcg(center, scores, theta) == pytest.approx(
            target, abs=1e-3
        )

    def test_minimality(self):
        scores = np.linspace(1.0, 0.1, 10)
        center = Ranking(np.arange(10))
        theta = tune_theta_for_ndcg_exact(center, scores, 0.95)
        assert exact_expected_ndcg(center, scores, theta * 0.9) < 0.95

    def test_agrees_with_sampled_tuner(self):
        from repro.algorithms.tuning import tune_theta_for_ndcg

        scores = np.linspace(1.0, 0.1, 10)
        center = Ranking(np.arange(10))
        exact = tune_theta_for_ndcg_exact(center, scores, 0.95)
        sampled = tune_theta_for_ndcg(center, scores, 0.95, m=500, seed=0)
        assert sampled == pytest.approx(exact, rel=0.35)

    def test_trivial_target(self):
        assert tune_theta_for_ndcg_exact(Ranking([0, 1]), np.zeros(2), 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_theta_for_ndcg_exact(Ranking([0, 1]), np.ones(2), 1.5)
