"""Distance-metric tests: exact values, metric axioms, fast-vs-naive parity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import LengthMismatchError
from repro.rankings.distances import (
    cayley_distance,
    footrule_distance,
    hamming_distance,
    kendall_tau_coefficient,
    kendall_tau_distance,
    kendall_tau_distance_naive,
    max_kendall_tau,
    spearman_distance,
    ulam_distance,
    weighted_kendall_tau,
)
from repro.rankings.permutation import Ranking, all_rankings, identity

perm6 = st.permutations(list(range(6)))


@st.composite
def two_perms(draw, max_n=8):
    """Two permutations of a shared random length."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    p = draw(st.permutations(list(range(n))))
    q = draw(st.permutations(list(range(n))))
    return p, q


class TestKendallTau:
    def test_identical(self):
        r = Ranking([2, 0, 1])
        assert kendall_tau_distance(r, r) == 0

    def test_reversal_is_max(self):
        n = 7
        fwd = identity(n)
        rev = Ranking(np.arange(n)[::-1])
        assert kendall_tau_distance(fwd, rev) == max_kendall_tau(n)

    def test_single_adjacent_swap(self):
        assert kendall_tau_distance(Ranking([0, 1, 2]), Ranking([1, 0, 2])) == 1

    def test_known_value(self):
        # pairs: (0,1) concordant? pi=[1,2,0] sigma=[0,1,2]
        assert kendall_tau_distance(Ranking([1, 2, 0]), Ranking([0, 1, 2])) == 2

    def test_accepts_raw_arrays(self):
        assert kendall_tau_distance([1, 0, 2], [0, 1, 2]) == 1

    def test_empty_and_singleton(self):
        assert kendall_tau_distance(Ranking([]), Ranking([])) == 0
        assert kendall_tau_distance(Ranking([0]), Ranking([0])) == 0

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            kendall_tau_distance(Ranking([0, 1]), Ranking([0, 1, 2]))

    @given(two_perms())
    def test_fast_matches_naive(self, pq):
        p, q = pq
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert kendall_tau_distance(rp, rq) == kendall_tau_distance_naive(rp, rq)

    @given(perm6, perm6)
    def test_symmetry(self, p, q):
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert kendall_tau_distance(rp, rq) == kendall_tau_distance(rq, rp)

    @given(perm6, perm6, perm6)
    def test_triangle_inequality(self, p, q, r):
        rp, rq, rr = (Ranking(np.array(x)) for x in (p, q, r))
        assert kendall_tau_distance(rp, rr) <= kendall_tau_distance(
            rp, rq
        ) + kendall_tau_distance(rq, rr)

    @given(perm6, perm6)
    def test_right_invariance(self, p, q):
        # d(pi∘tau, sigma∘tau) == d(pi, sigma) for any relabeling tau.
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        tau = Ranking([3, 1, 4, 0, 5, 2])
        assert kendall_tau_distance(
            rp.relabel(tau.order), rq.relabel(tau.order)
        ) == kendall_tau_distance(rp, rq)

    def test_large_random_fast_vs_naive(self, rng):
        p = Ranking(rng.permutation(300))
        q = Ranking(rng.permutation(300))
        assert kendall_tau_distance(p, q) == kendall_tau_distance_naive(p, q)


class TestKendallTauCoefficient:
    def test_identical_is_one(self):
        r = Ranking([1, 2, 0])
        assert kendall_tau_coefficient(r, r) == 1.0

    def test_reversal_is_minus_one(self):
        n = 6
        assert kendall_tau_coefficient(
            identity(n), Ranking(np.arange(n)[::-1])
        ) == pytest.approx(-1.0)

    def test_trivial_lengths(self):
        assert kendall_tau_coefficient(Ranking([0]), Ranking([0])) == 1.0
        assert kendall_tau_coefficient(Ranking([]), Ranking([])) == 1.0

    def test_length_mismatch_raises_even_for_trivial_pi(self):
        # Regression: the n < 2 early return used to skip the length check
        # and silently report a perfect 1.0 for mismatched inputs.
        with pytest.raises(LengthMismatchError):
            kendall_tau_coefficient(Ranking([0]), Ranking([0, 1]))
        with pytest.raises(LengthMismatchError):
            kendall_tau_coefficient(Ranking([]), Ranking([0]))
        with pytest.raises(LengthMismatchError):
            kendall_tau_coefficient(Ranking([0, 1, 2]), Ranking([0, 1]))

    @given(perm6, perm6)
    def test_range(self, p, q):
        k = kendall_tau_coefficient(Ranking(np.array(p)), Ranking(np.array(q)))
        assert -1.0 <= k <= 1.0


class TestLengthValidationAudit:
    """Every distance function must validate lengths before any
    degenerate-size early return."""

    @pytest.mark.parametrize(
        "fn",
        [
            kendall_tau_distance,
            kendall_tau_distance_naive,
            kendall_tau_coefficient,
            spearman_distance,
            footrule_distance,
            ulam_distance,
            cayley_distance,
            hamming_distance,
            weighted_kendall_tau,
        ],
    )
    def test_short_inputs_still_validated(self, fn):
        with pytest.raises(LengthMismatchError):
            fn(Ranking([0]), Ranking([0, 1]))
        with pytest.raises(LengthMismatchError):
            fn(Ranking([]), Ranking([0]))


class TestSpearmanAndFootrule:
    def test_spearman_known(self):
        # positions: pi=[1,0,2] -> swap items 0,1: (1-0)^2+(0-1)^2 = 2
        assert spearman_distance(Ranking([1, 0, 2]), Ranking([0, 1, 2])) == 2

    def test_footrule_known(self):
        assert footrule_distance(Ranking([1, 0, 2]), Ranking([0, 1, 2])) == 2

    @given(perm6, perm6)
    def test_footrule_bounds_kt(self, p, q):
        # Diaconis–Graham: KT <= footrule <= 2 * KT.
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        kt = kendall_tau_distance(rp, rq)
        fr = footrule_distance(rp, rq)
        assert kt <= fr <= 2 * kt

    @given(perm6)
    def test_identity_distances_zero(self, p):
        r = Ranking(np.array(p))
        assert spearman_distance(r, r) == 0
        assert footrule_distance(r, r) == 0

    @given(perm6, perm6)
    def test_spearman_symmetry(self, p, q):
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert spearman_distance(rp, rq) == spearman_distance(rq, rp)


class TestUlam:
    def test_identical(self):
        r = Ranking([2, 0, 1])
        assert ulam_distance(r, r) == 0

    def test_single_move(self):
        # moving one item => distance 1
        assert ulam_distance(Ranking([1, 2, 3, 0]), Ranking([0, 1, 2, 3])) == 1

    def test_reversal(self):
        n = 5
        assert ulam_distance(identity(n), Ranking(np.arange(n)[::-1])) == n - 1

    @given(perm6, perm6)
    def test_symmetry(self, p, q):
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert ulam_distance(rp, rq) == ulam_distance(rq, rp)

    @given(perm6, perm6)
    def test_bounded_by_n_minus_1(self, p, q):
        assert 0 <= ulam_distance(Ranking(np.array(p)), Ranking(np.array(q))) <= 5


class TestCayleyAndHamming:
    def test_cayley_single_transposition(self):
        assert cayley_distance(Ranking([1, 0, 2]), Ranking([0, 1, 2])) == 1

    def test_cayley_cycle(self):
        # 3-cycle needs 2 transpositions.
        assert cayley_distance(Ranking([1, 2, 0]), Ranking([0, 1, 2])) == 2

    def test_hamming(self):
        assert hamming_distance(Ranking([1, 0, 2]), Ranking([0, 1, 2])) == 2

    @given(perm6, perm6)
    def test_cayley_le_hamming(self, p, q):
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert cayley_distance(rp, rq) <= hamming_distance(rp, rq)

    @given(perm6, perm6)
    def test_cayley_symmetry(self, p, q):
        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        assert cayley_distance(rp, rq) == cayley_distance(rq, rp)


def test_all_distances_zero_iff_equal():
    for pi in all_rankings(4):
        for metric in (
            kendall_tau_distance,
            spearman_distance,
            footrule_distance,
            ulam_distance,
            cayley_distance,
            hamming_distance,
        ):
            base = Ranking([0, 1, 2, 3])
            d = metric(pi, base)
            assert (d == 0) == (pi == base), (metric.__name__, pi)


def test_max_kendall_tau_values():
    assert max_kendall_tau(0) == 0
    assert max_kendall_tau(1) == 0
    assert max_kendall_tau(5) == 10
    with pytest.raises(ValueError):
        max_kendall_tau(-1)


class TestWeightedKendallTau:
    def test_uniform_weights_recover_plain_kt(self):
        from repro.rankings.distances import weighted_kendall_tau

        p, q = Ranking([2, 0, 3, 1]), Ranking([0, 1, 2, 3])
        w = np.ones(4)
        assert weighted_kendall_tau(p, q, w) == kendall_tau_distance(p, q)

    def test_identical_zero(self):
        from repro.rankings.distances import weighted_kendall_tau

        r = Ranking([1, 0, 2])
        assert weighted_kendall_tau(r, r) == 0.0

    def test_top_swap_costs_more_than_bottom_swap(self):
        from repro.rankings.distances import weighted_kendall_tau

        base = identity(6)
        top_swap = Ranking([1, 0, 2, 3, 4, 5])
        bottom_swap = Ranking([0, 1, 2, 3, 5, 4])
        assert weighted_kendall_tau(top_swap, base) > weighted_kendall_tau(
            bottom_swap, base
        )

    def test_default_weights_are_dcg_discounts(self):
        from repro.rankings.distances import weighted_kendall_tau

        base = identity(3)
        swapped = Ranking([1, 0, 2])
        # Single discordant pair at positions (0, 1) in `swapped`; top
        # position 0 has 1-based rank 1 -> weight 1/log(2).
        assert weighted_kendall_tau(swapped, base) == pytest.approx(
            1.0 / np.log(2)
        )

    def test_weight_validation(self):
        from repro.rankings.distances import weighted_kendall_tau

        with pytest.raises(ValueError):
            weighted_kendall_tau(identity(3), identity(3), np.ones(2))
        with pytest.raises(ValueError):
            weighted_kendall_tau(identity(3), identity(3), -np.ones(3))

    @given(perm6, perm6)
    def test_symmetry_in_weighting_sense(self, p, q):
        # Weighted KT is not symmetric in general (weights follow pi's
        # positions) but must be non-negative and zero iff equal.
        from repro.rankings.distances import weighted_kendall_tau

        rp, rq = Ranking(np.array(p)), Ranking(np.array(q))
        d = weighted_kendall_tau(rp, rq)
        assert d >= 0.0
        assert (d == 0.0) == (rp == rq)
