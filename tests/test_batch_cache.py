"""Unit tests for the cross-loop kernel cache (:mod:`repro.batch.cache`)."""

import numpy as np
import pytest

from repro.batch import DEFAULT_CACHE, KernelCache, batch_violation_masks
from repro.batch.cache import CacheStats
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.mallows.marginals import _compute_position_marginals, position_marginals


@pytest.fixture
def constraints():
    return FairnessConstraints.from_rates([0.6, 0.6], [0.4, 0.4], k=1)


class TestBoundsCache:
    def test_values_match_uncached(self, constraints):
        cache = KernelCache()
        lower, upper = cache.count_bounds(constraints, 8)
        ref_lower, ref_upper = constraints.count_bounds_matrix(8)
        assert np.array_equal(lower, ref_lower)
        assert np.array_equal(upper, ref_upper)
        lo32, up32 = cache.violation_bounds32(constraints, 8)
        assert np.array_equal(lo32, ref_lower.T.astype(np.int32))
        assert np.array_equal(up32, ref_upper.T.astype(np.int32))

    def test_hit_miss_counters(self, constraints):
        cache = KernelCache()
        cache.count_bounds(constraints, 8)
        stats = cache.stats()
        assert (stats.bounds_misses, stats.bounds_hits) == (1, 0)
        cache.count_bounds(constraints, 8)
        cache.violation_bounds32(constraints, 8)
        stats = cache.stats()
        assert (stats.bounds_misses, stats.bounds_hits) == (1, 2)
        # A different prefix length is a different entry.
        cache.count_bounds(constraints, 9)
        assert cache.stats().bounds_misses == 2

    def test_value_based_keying(self):
        """Rebuilt-but-equal constraints (the German Credit loop) hit."""
        cache = KernelCache()
        a = FairnessConstraints.from_rates([0.5, 0.5], [0.5, 0.5], k=1)
        b = FairnessConstraints.from_rates([0.5, 0.5], [0.5, 0.5], k=3)
        cache.count_bounds(a, 6)
        cache.count_bounds(b, 6)  # same rates, different object and k
        stats = cache.stats()
        assert (stats.bounds_misses, stats.bounds_hits) == (1, 1)

    def test_returned_arrays_read_only(self, constraints):
        cache = KernelCache()
        lower, _ = cache.count_bounds(constraints, 5)
        with pytest.raises(ValueError):
            lower[0, 0] = 99

    def test_invalidate_constraints(self, constraints):
        cache = KernelCache()
        cache.count_bounds(constraints, 5)
        cache.count_bounds(constraints, 6)
        other = FairnessConstraints.from_rates([1.0], [0.0], k=1)
        cache.count_bounds(other, 5)
        assert cache.invalidate_constraints(constraints) == 2
        assert cache.stats().bounds_entries == 1
        cache.count_bounds(constraints, 5)  # cold again
        assert cache.stats().bounds_misses == 4

    def test_lru_eviction(self):
        cache = KernelCache(max_entries=2)
        cons = [
            FairnessConstraints.from_rates([r], [0.0], k=1)
            for r in (0.25, 0.5, 0.75)
        ]
        cache.count_bounds(cons[0], 4)
        cache.count_bounds(cons[1], 4)
        cache.count_bounds(cons[2], 4)  # evicts cons[0]
        assert cache.stats().bounds_entries == 2
        cache.count_bounds(cons[2], 4)
        assert cache.stats().bounds_hits == 1
        cache.count_bounds(cons[0], 4)  # re-inserted: a miss
        assert cache.stats().bounds_misses == 4

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)


class TestMarginalsCache:
    def test_values_match_uncached(self):
        cache = KernelCache()
        got = cache.position_marginals(7, 0.8)
        assert np.array_equal(got, _compute_position_marginals(7, 0.8))
        assert not got.flags.writeable

    def test_hit_miss_and_invalidate(self):
        cache = KernelCache()
        cache.position_marginals(6, 0.5)
        cache.position_marginals(6, 0.5)
        cache.position_marginals(6, 1.0)
        stats = cache.stats()
        assert (stats.marginals_misses, stats.marginals_hits) == (2, 1)
        assert cache.invalidate_marginals(6) == 2
        assert cache.stats().marginals_entries == 0
        cache.position_marginals(6, 0.5)
        cache.position_marginals(5, 0.5)
        assert cache.invalidate_marginals() == 2

    def test_public_function_is_cached(self):
        DEFAULT_CACHE.clear()
        a = position_marginals(9, 0.33)
        before = DEFAULT_CACHE.stats().marginals_hits
        b = position_marginals(9, 0.33)
        assert DEFAULT_CACHE.stats().marginals_hits == before + 1
        assert a is b  # the very same cached (read-only) matrix

    def test_clear_resets_counters(self):
        cache = KernelCache()
        cache.position_marginals(4, 0.1)
        cache.clear()
        stats = cache.stats()
        assert stats.hits == stats.misses == 0
        assert stats.marginals_entries == stats.bounds_entries == 0


class TestDefaultCacheWiring:
    def test_violation_masks_use_default_cache(self):
        DEFAULT_CACHE.clear()
        groups = GroupAssignment.from_indices(np.arange(8) % 2)
        constraints = FairnessConstraints.proportional(groups)
        orders = np.stack([np.random.default_rng(s).permutation(8) for s in range(5)])
        batch_violation_masks(orders, groups, constraints)
        first = DEFAULT_CACHE.stats()
        assert first.bounds_misses >= 1
        batch_violation_masks(orders, groups, constraints)
        second = DEFAULT_CACHE.stats()
        assert second.bounds_hits == first.bounds_hits + 1
        assert second.bounds_misses == first.bounds_misses

    def test_stats_summary_renders(self):
        stats = CacheStats(1, 2, 3, 4, 5, 6)
        text = stats.summary()
        assert "bounds 1 hits / 2 misses" in text
        assert "marginals 3 hits / 4 misses" in text
        assert stats.hits == 4 and stats.misses == 6
