"""Tests for the ``# repro: noqa[...]`` suppression machinery: the parser
itself, finding/suppression matching, multi-rule lines, and stale
detection (a marker that silences nothing is itself reported)."""

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    LintEngine,
    STALE_RULE_ID,
    SuppressionSyntaxError,
    find_suppressions,
    lint_source,
)
from repro.analysis.suppressions import parse_comment


class TestParser:
    def test_bare_noqa_covers_everything(self):
        [s] = find_suppressions("x = 1  # repro: noqa\n")
        assert s.line == 1
        assert s.rules is None
        assert s.covers("REP001") and s.covers("REP007")

    def test_single_rule(self):
        [s] = find_suppressions("x = 1  # repro: noqa[REP002] why\n")
        assert s.rules == ("REP002",)
        assert s.covers("REP002") and not s.covers("REP001")

    def test_rule_list_with_spaces_and_case(self):
        [s] = find_suppressions("x = 1  # repro: noqa[rep001 , REP006]\n")
        assert s.rules == ("REP001", "REP006")

    def test_justification_text_is_ignored(self):
        [s] = find_suppressions(
            "x = 1  # repro: noqa[REP001] calibration is timing-only\n"
        )
        assert s.rules == ("REP001",)

    def test_marker_inside_string_is_inert(self):
        assert find_suppressions('x = "# repro: noqa[REP001]"\n') == ()

    def test_ordinary_comments_are_not_markers(self):
        assert find_suppressions("x = 1  # a normal comment about noqa-ish\n") == ()

    def test_multiline_file_line_numbers(self):
        source = "a = 1\nb = 2  # repro: noqa[REP004]\nc = 3  # repro: noqa\n"
        lines = [s.line for s in find_suppressions(source)]
        assert lines == [2, 3]

    def test_empty_bracket_list_is_an_error(self):
        with pytest.raises(SuppressionSyntaxError, match="empty rule list"):
            find_suppressions("x = 1  # repro: noqa[]\n")

    def test_malformed_rule_id_is_an_error(self):
        with pytest.raises(SuppressionSyntaxError, match="malformed rule id"):
            find_suppressions("x = 1  # repro: noqa[REP001; REP002]\n")

    def test_parse_comment_none_for_plain_comment(self):
        assert parse_comment("# nothing to see", 1, 0) is None


SOURCE_ONE_VIOLATION = (
    "import time\n"
    "def f():\n"
    "    return time.time(){marker}\n"
)


def lint_serve(source):
    return lint_source(source, path="core.py", module="repro.serve.core")


class TestMatching:
    def test_inline_noqa_without_rule_list_suppresses(self):
        result = lint_serve(
            SOURCE_ONE_VIOLATION.format(marker="  # repro: noqa")
        )
        assert result.active == ()
        [finding] = result.suppressed
        assert (finding.rule, finding.line) == ("REP002", 3)

    def test_inline_noqa_with_matching_rule_suppresses(self):
        result = lint_serve(
            SOURCE_ONE_VIOLATION.format(marker="  # repro: noqa[REP002] why")
        )
        assert result.active == ()
        assert [f.rule for f in result.suppressed] == ["REP002"]

    def test_inline_noqa_with_other_rule_does_not_suppress(self):
        result = lint_serve(
            SOURCE_ONE_VIOLATION.format(marker="  # repro: noqa[REP001]")
        )
        rules = sorted(f.rule for f in result.active)
        # The clock read stays active AND the useless marker is stale.
        assert rules == [STALE_RULE_ID, "REP002"]

    def test_noqa_on_a_different_line_does_not_suppress(self):
        source = (
            "import time\n"
            "# repro: noqa[REP002] wrong line\n"
            "def f():\n"
            "    return time.time()\n"
        )
        result = lint_serve(source)
        assert sorted(f.rule for f in result.active) == [STALE_RULE_ID, "REP002"]

    def test_multi_rule_line_one_marker_covers_both(self):
        source = (
            "import numpy as np\n"
            "def f(units):\n"
            "    return [x for x in set(np.random.default_rng(0).permutation(3))]"
            "  # repro: noqa[REP001, REP006]\n"
        )
        result = lint_source(source, module="repro.engine.newmod")
        assert result.active == ()
        assert sorted(f.rule for f in result.suppressed) == ["REP001", "REP006"]

    def test_multi_rule_line_partial_marker_leaves_the_rest(self):
        source = (
            "import numpy as np\n"
            "def f(units):\n"
            "    return [x for x in set(np.random.default_rng(0).permutation(3))]"
            "  # repro: noqa[REP001]\n"
        )
        result = lint_source(source, module="repro.engine.newmod")
        assert [f.rule for f in result.active] == ["REP006"]
        assert [f.rule for f in result.suppressed] == ["REP001"]


class TestStaleDetection:
    def test_stale_bracketed_noqa_is_reported(self):
        result = lint_serve("x = 1  # repro: noqa[REP002] nothing here\n")
        [stale] = result.active
        assert stale.rule == STALE_RULE_ID
        assert stale.line == 1
        assert "stale suppression" in stale.message
        assert "noqa[REP002]" in stale.message

    def test_stale_bare_noqa_is_reported(self):
        result = lint_serve("x = 1  # repro: noqa\n")
        [stale] = result.active
        assert stale.rule == STALE_RULE_ID

    def test_useful_marker_is_not_stale(self):
        result = lint_serve(
            SOURCE_ONE_VIOLATION.format(marker="  # repro: noqa[REP002]")
        )
        assert all(f.rule != STALE_RULE_ID for f in result.findings)

    def test_stale_check_skipped_for_unselected_rules(self):
        # Under --select REP006 a noqa[REP002] is dormant, not stale.
        config = DEFAULT_CONFIG.with_rules(select=("REP006",))
        result = LintEngine(config).lint_source(
            "x = 1  # repro: noqa[REP002]\n",
            path="core.py",
            module="repro.serve.core",
        )
        assert result.findings == ()

    def test_stale_check_for_bare_noqa_needs_full_rule_set(self):
        config = DEFAULT_CONFIG.with_rules(select=("REP006",))
        result = LintEngine(config).lint_source(
            "x = 1  # repro: noqa\n", path="core.py", module="repro.serve.core"
        )
        assert result.findings == ()

    def test_stale_detection_can_be_ignored(self):
        config = DEFAULT_CONFIG.with_rules(ignore=(STALE_RULE_ID,))
        result = LintEngine(config).lint_source(
            "x = 1  # repro: noqa[REP002]\n",
            path="core.py",
            module="repro.serve.core",
        )
        assert result.findings == ()

    def test_malformed_marker_is_a_lint_error_not_a_crash(self):
        result = lint_serve("x = 1  # repro: noqa[]\n")
        assert result.errors and result.errors[0].line == 1
        assert not result.clean
