"""Tests for CG / DCG / IDCG / NDCG and exposure."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking, identity, random_ranking
from repro.rankings.quality import (
    cumulative_gain,
    dcg,
    exposure,
    idcg,
    ndcg,
    ndcg_of_order,
    position_discounts,
)
from repro.rankings.sorting import rank_by_score

scores_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestDiscounts:
    def test_values(self):
        d = position_discounts(3)
        assert d[0] == pytest.approx(1 / math.log(2))
        assert d[1] == pytest.approx(1 / math.log(3))
        assert d[2] == pytest.approx(1 / math.log(4))

    def test_strictly_decreasing(self):
        d = position_discounts(50)
        assert np.all(np.diff(d) < 0)

    def test_zero_length(self):
        assert position_discounts(0).size == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            position_discounts(-1)


class TestDcg:
    def test_hand_computed(self):
        scores = [3.0, 2.0, 1.0]
        r = Ranking([0, 1, 2])
        expected = 3 / math.log(2) + 2 / math.log(3) + 1 / math.log(4)
        assert dcg(r, scores) == pytest.approx(expected)

    def test_topk_only(self):
        scores = [3.0, 2.0, 1.0]
        r = Ranking([0, 1, 2])
        assert dcg(r, scores, k=1) == pytest.approx(3 / math.log(2))

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            dcg(Ranking([0, 1]), [1.0, 2.0, 3.0])

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            dcg(Ranking([0, 1]), [1.0, 2.0], k=3)


class TestIdcgNdcg:
    def test_idcg_is_sorted_dcg(self):
        scores = [1.0, 5.0, 3.0]
        best = rank_by_score(scores)
        assert idcg(scores) == pytest.approx(dcg(best, scores))

    def test_ndcg_of_ideal_is_one(self):
        scores = [1.0, 5.0, 3.0]
        assert ndcg(rank_by_score(scores), scores) == pytest.approx(1.0)

    def test_ndcg_all_zero_scores(self):
        assert ndcg(Ranking([1, 0]), [0.0, 0.0]) == 1.0

    def test_ndcg_reversed_is_minimal(self, rng):
        scores = np.sort(rng.random(8))[::-1]
        worst = Ranking(np.arange(8)[::-1])
        vals = [ndcg(r, scores) for r in (identity(8), worst)]
        assert vals[0] == pytest.approx(1.0)
        assert vals[1] < vals[0]

    @given(scores_strategy)
    def test_ndcg_in_unit_interval_for_nonneg_scores(self, scores):
        n = len(scores)
        r = random_ranking(n, seed=0)
        v = ndcg(r, scores)
        assert 0.0 <= v <= 1.0 + 1e-12

    def test_fast_path_matches(self, rng):
        scores = rng.random(9)
        r = random_ranking(9, seed=3)
        disc = position_discounts(9)
        ideal = idcg(scores, 9)
        assert ndcg_of_order(r.order, scores, disc, ideal) == pytest.approx(
            ndcg(r, scores)
        )

    def test_fast_path_zero_ideal(self):
        assert ndcg_of_order(np.array([0, 1]), np.zeros(2), position_discounts(2), 0.0) == 1.0


class TestCumulativeGain:
    def test_plain_sum(self):
        assert cumulative_gain(Ranking([2, 1, 0]), [1.0, 2.0, 4.0]) == 7.0

    def test_topk(self):
        assert cumulative_gain(Ranking([2, 1, 0]), [1.0, 2.0, 4.0], k=1) == 4.0


class TestExposure:
    def test_top_item_gets_biggest_exposure(self):
        e = exposure(Ranking([2, 0, 1]))
        assert e[2] > e[0] > e[1]

    def test_beyond_k_zero(self):
        e = exposure(Ranking([2, 0, 1]), k=1)
        assert e[2] > 0
        assert e[0] == 0 and e[1] == 0

    def test_invariant_total_mass(self, rng):
        # Total exposure depends only on n, not the ranking.
        a = exposure(random_ranking(10, seed=1)).sum()
        b = exposure(random_ranking(10, seed=2)).sum()
        assert a == pytest.approx(b)
