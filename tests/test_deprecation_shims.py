"""Deprecation shims: legacy algorithm constructors keep working, warn
exactly once (through the resettable warn-once registry), and produce
byte-identical rankings to the engine registry path.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.algorithms.base import suppress_legacy_warnings
from repro.algorithms.binary_ipf import GrBinaryIPF
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
from repro.algorithms.ilp import IlpFairRanking
from repro.algorithms.ipf import ApproxMultiValuedIPF
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.batch import reset_warnings
from repro.engine import RankingEngine, RankingRequest, make_algorithm
from repro.groups.attributes import GroupAssignment
from repro.algorithms.base import FairRankingProblem

#: (legacy class, registry name, constructor params) for the whole zoo.
ZOO = [
    (MallowsFairRanking, "mallows", {"theta": 1.0, "n_samples": 5}),
    (GeneralizedMallowsFairRanking, "gmm", {"thetas": 1.0, "n_samples": 3}),
    (DetConstSort, "detconstsort", {"noise_sigma": 0.0}),
    (ApproxMultiValuedIPF, "ipf", {}),
    (GrBinaryIPF, "binary-ipf", {}),
    (IlpFairRanking, "ilp", {}),
    (DpFairRanking, "dp", {}),
]


@pytest.fixture
def problem():
    groups = GroupAssignment(["a", "b", "a", "b", "a", "b"])
    scores = np.array([0.95, 0.9, 0.7, 0.65, 0.45, 0.4])
    return FairRankingProblem.from_scores(scores, groups)


@pytest.mark.parametrize("cls,name,params", ZOO, ids=[z[1] for z in ZOO])
class TestLegacyConstructorWarnsOnce:
    def test_exactly_one_deprecation_warning(self, cls, name, params):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls(**params)
            cls(**params)  # second construction is deduplicated
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert cls.__name__ in message
        assert f'"{name}"' in message

    def test_reset_rearms_the_warning(self, cls, name, params):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            cls(**params)
        reset_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls(**params)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_registry_path_is_silent(self, cls, name, params):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alg = make_algorithm(name, **params)
        assert isinstance(alg, cls)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_legacy_ranking_byte_identical_to_engine_path(
        self, cls, name, params, problem
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = cls(**params).rank(problem, seed=11)
        response = RankingEngine().rank(name, problem, seed=11, **params)
        assert (legacy.ranking.order == response.ranking.order).all()
        # And through the streamed batch path, same seed child semantics:
        request = RankingRequest(name, problem, params=params, seed=11)
        (streamed,) = RankingEngine().rank_many([request], seed=0)
        assert (legacy.ranking.order == streamed.ranking.order).all()


class TestSuppressionContext:
    def test_suppression_is_scoped_and_reentrant(self):
        reset_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with suppress_legacy_warnings():
                with suppress_legacy_warnings():
                    DpFairRanking()
                DetConstSort()
            GrBinaryIPF()  # outside: armed again
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "GrBinaryIPF" in str(deprecations[0].message)

    def test_internal_experiment_path_is_silent(self):
        """The experiments construct through the registry — a pipeline run
        must not emit constructor deprecations."""
        from repro.datasets.german_credit import synthesize_german_credit
        from repro.experiments.config import GermanCreditConfig
        from repro.experiments.german_credit_exp import _one_repeat

        data = synthesize_german_credit(seed=0)
        config = GermanCreditConfig(n_repeats=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _one_repeat(data, 20, config, np.random.default_rng(0))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
