"""Bit-for-bit equivalence of the vectorized RIM materializer.

The legacy per-sample insertion loop (the original
``_orders_from_displacements``) is kept here as the reference semantics;
the vectorized decode in :mod:`repro.mallows.sampling` must reproduce it
exactly — same displacement matrix in, same orders out — across every theta
regime and ranking size, including the chunk boundary of the decoder.
"""

import numpy as np
import pytest

from repro.mallows.sampling import (
    _DECODE_CHUNK,
    _displacement_draws,
    _orders_from_displacements,
    sample_mallows_batch,
)
from repro.rankings.permutation import random_ranking

THETAS = (0.0, 0.01, 0.5, 2.0)
SIZES = (1, 2, 5, 50)


def _legacy_orders_from_displacements(
    center_order: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Reference decode: replay the insertions with Python list surgery.

    Deliberate twin of ``_scalar_orders_from_displacements`` in
    ``benchmarks/bench_batch_engine.py``; see the note there.
    """
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    center_list = center_order.tolist()
    for s in range(m):
        current: list[int] = []
        row = v[s]
        for j in range(n):
            current.insert(j - int(row[j]), center_list[j])
        out[s] = current
    return out


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", SIZES)
def test_vectorized_decode_matches_legacy(theta, n):
    rng = np.random.default_rng(1000 + int(theta * 100) + n)
    v = _displacement_draws(n, theta, 200, rng)
    center = random_ranking(n, seed=n)
    expected = _legacy_orders_from_displacements(center.order, v)
    assert np.array_equal(_orders_from_displacements(center.order, v), expected)


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", SIZES)
def test_seeded_sampler_matches_legacy_pipeline(theta, n):
    """End-to-end: same seed, same samples as the legacy implementation."""
    m = 150
    center = random_ranking(n, seed=7 * n + 1)
    rng = np.random.default_rng(42)
    expected = _legacy_orders_from_displacements(
        center.order, _displacement_draws(n, theta, m, rng)
    )
    assert np.array_equal(
        sample_mallows_batch(center, theta, m, seed=42), expected
    )


def test_decode_across_chunk_boundary():
    """Batches straddling the decode chunk size must be seamless."""
    n = 6
    m = _DECODE_CHUNK + 17
    rng = np.random.default_rng(3)
    v = _displacement_draws(n, 0.4, m, rng)
    center = random_ranking(n, seed=0)
    got = _orders_from_displacements(center.order, v)
    # Spot-check rows on both sides of the boundary against the reference.
    check = np.r_[0:5, _DECODE_CHUNK - 3 : _DECODE_CHUNK + 3, m - 5 : m]
    expected = _legacy_orders_from_displacements(center.order, v[check])
    assert np.array_equal(got[check], expected)


def test_decode_empty_batch_and_empty_ranking():
    assert _orders_from_displacements(
        np.arange(4), np.empty((0, 4), dtype=np.int64)
    ).shape == (0, 4)
    assert _orders_from_displacements(
        np.arange(0), np.empty((3, 0), dtype=np.int64)
    ).shape == (3, 0)
