"""Smoke tests: the fast example scripts run end to end.

The examples double as documentation; breaking one silently would be worse
than the few seconds these tests cost.  Only the quick examples are run —
the heavier studies are exercised through the experiment tests instead.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _load_example(name: str):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_quickstart(self, capsys):
        _load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Infeasible Index" in out
        assert "theta sweep" in out

    def test_rank_aggregation_pipeline(self, capsys):
        _load_example("rank_aggregation_pipeline").main()
        out = capsys.readouterr().out
        assert "Kemeny (exact)" in out
        assert "Mallows (attribute-blind)" in out

    def test_hr_shortlisting(self, capsys):
        _load_example("hr_shortlisting").main()
        out = capsys.readouterr().out
        assert "representation" in out
        assert "DetConstSort" in out

    def test_serving_async(self, capsys):
        _load_example("serving_async").main()
        out = capsys.readouterr().out
        assert "served 24/24 concurrent clients" in out
        assert "coalesced batches" in out
        assert "byte-identical to the serial loop: ok" in out

    def test_serving_http(self, capsys):
        _load_example("serving_http").main()
        out = capsys.readouterr().out
        assert "healthz: ok" in out
        assert "served 24/24 HTTP clients" in out
        assert "byte-identical to the serial loop: ok" in out


class TestExampleFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "hr_shortlisting",
            "german_credit_study",
            "robustness_unknown_attribute",
            "rank_aggregation_pipeline",
            "tradeoff_frontier",
            "serving_throughput",
            "serving_async",
            "serving_http",
        ],
    )
    def test_present_and_has_main(self, name):
        path = os.path.join(EXAMPLES_DIR, f"{name}.py")
        assert os.path.isfile(path)
        with open(path) as f:
            source = f.read()
        assert "def main()" in source
        assert '__main__' in source
