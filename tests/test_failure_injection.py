"""Failure-injection tests: degenerate inputs, infeasible constraints, and
adversarial configurations across every algorithm."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.binary_ipf import GrBinaryIPF
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
from repro.algorithms.ilp import IlpFairRanking
from repro.algorithms.ipf import ApproxMultiValuedIPF
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.exceptions import InfeasibleProblemError
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking

ALL_ALGORITHMS = [
    MallowsFairRanking(0.5, 3),
    GeneralizedMallowsFairRanking(0.5, 3),
    DetConstSort(),
    ApproxMultiValuedIPF(),
    DpFairRanking(),
    IlpFairRanking(),
]


def make_problem(n, groups, scores=None, constraints=None):
    scores = np.linspace(1.0, 0.1, n) if scores is None else scores
    return FairRankingProblem.from_scores(scores, groups, constraints)


class TestSingleGroup:
    """One group: every ranking is trivially fair; the algorithms must
    return score order (or a permutation, for the randomized ones)."""

    @pytest.mark.parametrize(
        "alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__
    )
    def test_runs(self, alg):
        ga = GroupAssignment(["only"] * 6)
        problem = make_problem(6, ga)
        result = alg.rank(problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(6))

    def test_exact_solvers_return_score_order(self):
        ga = GroupAssignment(["only"] * 6)
        problem = make_problem(6, ga)
        for alg in (DpFairRanking(), IlpFairRanking()):
            result = alg.rank(problem, seed=0)
            assert result.ranking == problem.base_ranking


class TestSingletonGroups:
    """Every item its own group: proportional bounds make most prefixes
    infeasible to violate or satisfy non-trivially."""

    def test_exact_solver_still_finds_a_ranking(self):
        ga = GroupAssignment([f"g{i}" for i in range(5)])
        problem = make_problem(5, ga)
        result = DpFairRanking().rank(problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(5))

    def test_ipf_handles_singletons(self):
        ga = GroupAssignment([f"g{i}" for i in range(5)])
        problem = make_problem(5, ga)
        result = ApproxMultiValuedIPF().rank(problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(5))


class TestTinyInstances:
    @pytest.mark.parametrize(
        "alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__
    )
    def test_two_items(self, alg):
        ga = GroupAssignment(["a", "b"])
        problem = make_problem(2, ga)
        result = alg.rank(problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == [0, 1]

    def test_single_item(self):
        ga = GroupAssignment(["a"])
        problem = make_problem(1, ga)
        for alg in (MallowsFairRanking(1.0), DetConstSort(), DpFairRanking()):
            assert alg.rank(problem, seed=0).ranking == Ranking([0])


class TestInfeasibleConstraints:
    """Bounds demanding more than a group can supply must raise cleanly."""

    def test_floor_exceeds_group_size(self):
        ga = GroupAssignment(["a", "b", "b", "b"])
        # Group a (one member) must fill >= 75% of every prefix.
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.75, 0.0])
        problem = make_problem(4, ga, constraints=fc)
        for alg in (DpFairRanking(), IlpFairRanking(), ApproxMultiValuedIPF()):
            with pytest.raises(InfeasibleProblemError):
                alg.rank(problem, seed=0)

    def test_construction_raises_on_infeasible(self):
        ga = GroupAssignment(["a", "b", "b", "b"])
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.75, 0.0])
        with pytest.raises(InfeasibleProblemError):
            weakly_fair_ranking(np.ones(4), ga, fc)

    def test_soft_mode_survives_infeasible(self):
        ga = GroupAssignment(["a", "b", "b", "b"])
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.75, 0.0])
        ranking = weakly_fair_ranking(np.ones(4), ga, fc, strong=False)
        assert sorted(ranking.order.tolist()) == [0, 1, 2, 3]

    def test_zero_upper_bound_blocks_group(self):
        # Group a may never appear in any prefix — impossible for a full
        # ranking containing group-a items.
        ga = GroupAssignment(["a", "b"])
        fc = FairnessConstraints.from_rates([0.0, 1.0], [0.0, 0.0])
        problem = make_problem(2, ga, constraints=fc)
        with pytest.raises(InfeasibleProblemError):
            DpFairRanking().rank(problem, seed=0)


class TestAdversarialScores:
    def test_all_equal_scores(self):
        ga = GroupAssignment(["a", "b"] * 4)
        problem = make_problem(8, ga, scores=np.ones(8))
        for alg in ALL_ALGORITHMS:
            result = alg.rank(problem, seed=0)
            assert sorted(result.ranking.order.tolist()) == list(range(8))

    def test_negative_scores(self):
        ga = GroupAssignment(["a", "b"] * 3)
        scores = -np.linspace(1.0, 2.0, 6)
        problem = make_problem(6, ga, scores=scores)
        result = DpFairRanking().rank(problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(6))

    def test_huge_score_range(self):
        ga = GroupAssignment(["a", "b"] * 3)
        scores = np.array([1e12, 1e-12, 1e6, 1.0, 1e-6, 1e9])
        problem = make_problem(6, ga, scores=scores)
        for alg in (DetConstSort(), ApproxMultiValuedIPF(), DpFairRanking()):
            result = alg.rank(problem, seed=0)
            assert sorted(result.ranking.order.tolist()) == list(range(6))


class TestNoiseExtremes:
    def test_enormous_sigma_still_valid(self):
        ga = GroupAssignment(["a", "b"] * 5)
        problem = make_problem(10, ga)
        for alg in (
            DetConstSort(noise_sigma=100.0),
            ApproxMultiValuedIPF(noise_sigma=100.0),
            DpFairRanking(noise_sigma=100.0),
        ):
            result = alg.rank(problem, seed=0)
            assert sorted(result.ranking.order.tolist()) == list(range(10))

    def test_gr_binary_rejects_three_groups_clearly(self):
        ga = GroupAssignment(["a", "b", "c"])
        problem = make_problem(3, ga)
        with pytest.raises(ValueError, match="2 groups"):
            GrBinaryIPF().rank(problem)
