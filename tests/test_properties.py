"""Cross-module property-based tests (hypothesis).

These exercise invariants that span several layers: fairness metrics vs
permutation algebra, algorithm outputs vs constraint feasibility, and the
Mallows machinery vs the distance kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.criteria import batch_infeasible_index, batch_percent_fair
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.ipf import ApproxMultiValuedIPF
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.fairness.checks import is_fair, prefix_group_counts
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import (
    infeasible_index,
    infeasible_index_breakdown,
    percent_fair_positions,
)
from repro.groups.attributes import GroupAssignment
from repro.mallows.generalized import displacement_vector
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, random_ranking


@st.composite
def grouped_instance(draw):
    """A random (ranking, groups) pair: 4-12 items, 2-4 groups, every group
    non-empty."""
    n = draw(st.integers(min_value=4, max_value=12))
    g = draw(st.integers(min_value=2, max_value=min(4, n)))
    # Guarantee non-empty groups by seeding one item per group.
    labels = list(range(g)) + [
        draw(st.integers(min_value=0, max_value=g - 1)) for _ in range(n - g)
    ]
    perm = draw(st.permutations(list(range(n))))
    indices = np.array(labels, dtype=np.int64)
    return Ranking(np.array(perm)), GroupAssignment.from_indices(indices, g)


@settings(max_examples=60, deadline=None)
@given(grouped_instance())
def test_ii_zero_iff_strongly_fair(pair):
    ranking, groups = pair
    fc = FairnessConstraints.proportional(groups)
    ii = infeasible_index(ranking, groups, fc)
    assert (ii == 0) == is_fair(ranking, groups, fc)


@settings(max_examples=60, deadline=None)
@given(grouped_instance())
def test_percent_fair_consistent_with_breakdown(pair):
    ranking, groups = pair
    fc = FairnessConstraints.proportional(groups)
    b = infeasible_index_breakdown(ranking, groups, fc)
    assert percent_fair_positions(ranking, groups, fc) == pytest.approx(
        100.0 * (1 - b.either / len(ranking))
    )


@settings(max_examples=60, deadline=None)
@given(grouped_instance())
def test_ii_invariant_under_within_group_swaps(pair):
    """Swapping two same-group items never changes any fairness metric."""
    ranking, groups = pair
    fc = FairnessConstraints.proportional(groups)
    order = ranking.order
    group_seq = groups.indices[order]
    # Find two positions holding the same group (exists iff some group has
    # two members).
    for gi in range(groups.n_groups):
        slots = np.flatnonzero(group_seq == gi)
        if slots.size >= 2:
            swapped = ranking.swap_positions(int(slots[0]), int(slots[1]))
            assert infeasible_index(swapped, groups, fc) == infeasible_index(
                ranking, groups, fc
            )
            break


@settings(max_examples=60, deadline=None)
@given(grouped_instance())
def test_full_prefix_never_violates_proportional_bounds(pair):
    """The length-n prefix contains every group exactly: it always sits in
    the rounding band of the proportional bounds."""
    ranking, groups = pair
    fc = FairnessConstraints.proportional(groups)
    n = len(ranking)
    counts = prefix_group_counts(ranking, groups)[n - 1]
    assert np.all(counts >= fc.lower_counts(n))
    assert np.all(counts <= fc.upper_counts(n))


@settings(max_examples=40, deadline=None)
@given(grouped_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_batch_metrics_match_scalar(pair, seed):
    _, groups = pair
    n = groups.n_items
    fc = FairnessConstraints.proportional(groups)
    rng = np.random.default_rng(seed)
    orders = np.stack([rng.permutation(n) for _ in range(4)])
    iis = batch_infeasible_index(orders, groups, fc)
    pfs = batch_percent_fair(orders, groups, fc)
    for i, row in enumerate(orders):
        r = Ranking(row)
        assert iis[i] == infeasible_index(r, groups, fc)
        assert pfs[i] == pytest.approx(percent_fair_positions(r, groups, fc))


@settings(max_examples=25, deadline=None)
@given(grouped_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_exact_solvers_dominate_feasible_heuristics(pair, seed):
    """The DP optimum's DCG is an upper bound for every *feasible* output.

    IPF's output is always two-sided fair, so it must never beat the DP.
    DetConstSort only enforces floors — its output may violate upper bounds
    and legally exceed the two-sided optimum — so for it the bound applies
    only when its output happens to be strongly fair.
    """
    _, groups = pair
    n = groups.n_items
    rng = np.random.default_rng(seed)
    scores = rng.random(n)
    problem = FairRankingProblem.from_scores(scores, groups)
    from repro.rankings.quality import dcg

    exact = DpFairRanking().rank(problem)
    fc = problem.constraints

    ipf = ApproxMultiValuedIPF().rank(problem, seed=0)
    assert dcg(ipf.ranking, scores) <= exact.metadata["dcg"] + 1e-9

    heur = DetConstSort().rank(problem, seed=0)
    if is_fair(heur.ranking, groups, fc):
        assert dcg(heur.ranking, scores) <= exact.metadata["dcg"] + 1e-9


@settings(max_examples=25, deadline=None)
@given(grouped_instance())
def test_ipf_output_always_strongly_fair(pair):
    ranking, groups = pair
    fc = FairnessConstraints.proportional(groups)
    problem = FairRankingProblem(
        base_ranking=ranking, groups=groups, constraints=fc
    )
    result = ApproxMultiValuedIPF().rank(problem, seed=0)
    assert is_fair(result.ranking, groups, fc)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_mallows_samples_are_permutations_and_displacements_sum(n, theta, seed):
    center = random_ranking(n, seed=seed)
    orders = sample_mallows_batch(center, theta, 5, seed=seed)
    for row in orders:
        r = Ranking(row)
        assert sorted(row.tolist()) == list(range(n))
        v = displacement_vector(r, center)
        assert int(v.sum()) == kendall_tau_distance(r, center)


@settings(max_examples=20, deadline=None)
@given(grouped_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_mallows_postprocess_permutes_base(pair, seed):
    ranking, groups = pair
    scores = np.linspace(1.0, 0.0, len(ranking))
    problem = FairRankingProblem(
        base_ranking=ranking, scores=scores, groups=groups
    )
    result = MallowsFairRanking(0.5, 3).rank(problem, seed=seed)
    assert sorted(result.ranking.order.tolist()) == list(range(len(ranking)))
