"""Tests for the Generalized Mallows Model (per-position dispersions)."""

import math

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.mallows.generalized import (
    GeneralizedMallowsModel,
    dispersion_profile,
    displacement_vector,
    fit_generalized_mallows,
)
from repro.mallows.model import MallowsModel, expected_kendall_tau
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, all_rankings, identity, random_ranking


class TestDisplacementVector:
    def test_identity_is_zero(self):
        c = random_ranking(7, seed=0)
        assert displacement_vector(c, c).tolist() == [0] * 6

    def test_sums_to_kendall_tau(self):
        c = random_ranking(8, seed=1)
        for seed in range(10):
            r = random_ranking(8, seed=seed)
            v = displacement_vector(r, c)
            assert int(v.sum()) == kendall_tau_distance(r, c)

    def test_bounds(self):
        c = identity(6)
        for seed in range(10):
            r = random_ranking(6, seed=seed)
            v = displacement_vector(r, c)
            for j, vj in enumerate(v, start=1):
                assert 0 <= vj <= j

    def test_reversal_maximal(self):
        n = 5
        c = identity(n)
        rev = Ranking(np.arange(n)[::-1])
        assert displacement_vector(rev, c).tolist() == [1, 2, 3, 4]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            displacement_vector(identity(3), identity(4))

    def test_tiny_rankings(self):
        assert displacement_vector(identity(1), identity(1)).size == 0
        assert displacement_vector(Ranking([]), Ranking([])).size == 0


class TestModel:
    def test_constant_thetas_match_standard_mallows(self):
        center = Ranking([2, 0, 3, 1])
        theta = 0.8
        gmm = GeneralizedMallowsModel.standard(center, theta)
        std = MallowsModel(center=center, theta=theta)
        for r in all_rankings(4):
            assert gmm.pmf(r) == pytest.approx(std.pmf(r))

    def test_pmf_sums_to_one(self):
        center = Ranking([1, 3, 0, 2])
        gmm = GeneralizedMallowsModel(center, thetas=np.array([0.3, 1.2, 0.0]))
        total = sum(gmm.pmf(r) for r in all_rankings(4))
        assert total == pytest.approx(1.0)

    def test_expected_distance_matches_standard(self):
        gmm = GeneralizedMallowsModel.standard(identity(10), 0.7)
        assert gmm.expected_distance() == pytest.approx(
            expected_kendall_tau(10, 0.7)
        )

    def test_expected_displacements_brute_force(self):
        center = identity(4)
        thetas = np.array([0.5, 1.5, 0.2])
        gmm = GeneralizedMallowsModel(center, thetas=thetas)
        exp = np.zeros(3)
        for r in all_rankings(4):
            exp += gmm.pmf(r) * displacement_vector(r, center)
        assert np.allclose(gmm.expected_displacements(), exp)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralizedMallowsModel(identity(4), thetas=np.array([0.5]))
        with pytest.raises(ValueError):
            GeneralizedMallowsModel(identity(3), thetas=np.array([-0.5, 0.1]))


class TestSampling:
    def test_valid_permutations(self):
        gmm = GeneralizedMallowsModel(
            identity(8), thetas=dispersion_profile(8, 0.1, 3.0, split=3)
        )
        orders = gmm.sample_orders(40, seed=0)
        for row in orders:
            assert sorted(row.tolist()) == list(range(8))

    def test_mean_displacements_match_theory(self):
        thetas = np.array([0.2, 1.0, 0.0, 2.0, 0.5])
        gmm = GeneralizedMallowsModel(identity(6), thetas=thetas)
        samples = gmm.sample(3000, seed=1)
        v_mean = np.mean(
            [displacement_vector(r, gmm.center) for r in samples], axis=0
        )
        assert np.allclose(v_mean, gmm.expected_displacements(), atol=0.12)

    def test_constant_profile_matches_rim_statistics(self):
        gmm = GeneralizedMallowsModel.standard(identity(10), 1.0)
        samples = gmm.sample(2000, seed=2)
        mean_d = np.mean([kendall_tau_distance(r, gmm.center) for r in samples])
        assert mean_d == pytest.approx(expected_kendall_tau(10, 1.0), abs=0.4)

    def test_tail_freeze_profile(self):
        # theta_tail huge: late items never displace, so the last items of
        # the centre stay exactly in place.
        n = 8
        gmm = GeneralizedMallowsModel(
            identity(n), thetas=dispersion_profile(n, 0.0, 40.0, split=3)
        )
        for r in gmm.sample(50, seed=3):
            # Items 4..7 inserted with huge theta: displacement 0 => they
            # occupy the final positions in centre order.
            assert r.order[4:].tolist() == [4, 5, 6, 7]

    def test_zero_and_empty(self):
        gmm = GeneralizedMallowsModel.standard(identity(5), 1.0)
        assert gmm.sample_orders(0).shape == (0, 5)
        with pytest.raises(ValueError):
            gmm.sample_orders(-1)

    def test_reproducible(self):
        gmm = GeneralizedMallowsModel.standard(identity(6), 0.5)
        a = gmm.sample_orders(5, seed=9)
        b = gmm.sample_orders(5, seed=9)
        assert np.array_equal(a, b)


class TestFit:
    def test_recovers_heterogeneous_thetas(self):
        true = np.array([0.3, 0.3, 2.0, 2.0, 0.5, 0.5, 1.0])
        gmm = GeneralizedMallowsModel(identity(8), thetas=true)
        samples = gmm.sample(4000, seed=4)
        fitted = fit_generalized_mallows(samples, center=gmm.center)
        assert np.allclose(fitted.thetas, true, rtol=0.25, atol=0.15)

    def test_borda_center_used_when_omitted(self):
        center = random_ranking(7, seed=5)
        gmm = GeneralizedMallowsModel.standard(center, 2.0)
        samples = gmm.sample(500, seed=6)
        fitted = fit_generalized_mallows(samples)
        assert fitted.center == center

    def test_point_mass_gives_max_theta(self):
        center = identity(5)
        fitted = fit_generalized_mallows([center] * 20, center=center)
        assert np.all(fitted.thetas >= 10.0)

    def test_empty_raises(self):
        with pytest.raises(EstimationError):
            fit_generalized_mallows([])

    def test_single_item(self):
        fitted = fit_generalized_mallows([identity(1)], center=identity(1))
        assert fitted.thetas.size == 0


class TestDispersionProfile:
    def test_shape_and_values(self):
        p = dispersion_profile(10, 0.1, 2.0, split=4)
        assert p.shape == (9,)
        assert p[:4].tolist() == [0.1] * 4
        assert p[4:].tolist() == [2.0] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            dispersion_profile(0, 1.0, 1.0, 0)
        with pytest.raises(ValueError):
            dispersion_profile(5, 1.0, 1.0, 5)
        with pytest.raises(ValueError):
            dispersion_profile(5, -1.0, 1.0, 2)
