"""Fake-clock tests of the serving tier's semantics core.

Everything here drives the *production* state machine
(:class:`repro.serve.core.ServerCore` and its parts) through the
deterministic harness in :mod:`serve_harness` — manual time, recording
waiters, inline engine drains.  No thread, no event loop, and not a
single real sleep: batching-window coalescing, max-batch cutoff, deadline
expiry, queue-full rejection, FIFO promotion and client cancellation are
all asserted as exact state transitions, including the hypothesis
property that *any* interleaving of admitted requests serves responses
byte-identical to the serial loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import FairRankingProblem
from repro.engine import CostModel, RankingEngine, RankingRequest, responses_digest
from repro.groups.attributes import GroupAssignment
from repro.serve import (
    AdmissionPolicy,
    Decision,
    DeadlineExceeded,
    MicroBatcher,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.protocol import BATCHED, DISPATCHED, QUEUED, RETIRED, Ticket

from serve_harness import CoreDriver, RecordingWaiter


@pytest.fixture
def problem():
    groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    return FairRankingProblem.from_scores(scores, groups)


@pytest.fixture
def engine():
    with RankingEngine(n_jobs=1) as eng:
        yield eng


def _requests(problem, n):
    """n cheap mixed-kind requests (deterministic + sampling algorithms)."""
    cycle = (
        ("dp", {}),
        ("mallows", {"theta": 0.5, "n_samples": 5}),
        ("detconstsort", {}),
        ("ipf", {}),
    )
    return [
        RankingRequest(name, problem, params=dict(params), request_id=f"r{i}")
        for i, (name, params) in ((j, cycle[j % len(cycle)]) for j in range(n))
    ]


def _serial_digest(requests, seed):
    """The reference: one serial rank_many over the same submissions."""
    with RankingEngine(n_jobs=1) as ref:
        return responses_digest(ref.rank_many(requests, seed=seed, n_jobs=1))


class TestMicroBatcher:
    def _ticket(self, i):
        return Ticket(
            index=i, request=None, kind=("rank", "dp", 6), cost=0.05,
            waiter=RecordingWaiter(), submitted_at=0.0,
        )

    def test_window_opens_on_first_add(self):
        b = MicroBatcher(window=0.01, max_batch_size=8)
        assert b.next_flush_at() is None
        b.add(self._ticket(0), now=5.0)
        assert b.next_flush_at() == pytest.approx(5.01)
        # Later joiners do NOT extend the window.
        b.add(self._ticket(1), now=5.008)
        assert b.next_flush_at() == pytest.approx(5.01)

    def test_collect_before_window_yields_nothing(self):
        b = MicroBatcher(window=0.01, max_batch_size=8)
        b.add(self._ticket(0), now=0.0)
        assert b.collect_due(0.005) == []
        assert len(b) == 1

    def test_window_expiry_closes_batch(self):
        b = MicroBatcher(window=0.01, max_batch_size=8)
        t0, t1 = self._ticket(0), self._ticket(1)
        b.add(t0, now=0.0)
        b.add(t1, now=0.004)
        (batch,) = b.collect_due(0.01)
        assert batch == [t0, t1]
        assert len(b) == 0 and b.next_flush_at() is None

    def test_full_batch_closes_immediately(self):
        b = MicroBatcher(window=10.0, max_batch_size=2)
        b.add(self._ticket(0), now=0.0)
        b.add(self._ticket(1), now=0.0)
        # Collectable now — a full batch never waits for its window.
        assert b.next_flush_at() == float("-inf")
        (batch,) = b.collect_due(0.0)
        assert len(batch) == 2

    def test_remove_from_open_window_resets_it(self):
        b = MicroBatcher(window=0.01, max_batch_size=8)
        t0 = self._ticket(0)
        b.add(t0, now=0.0)
        assert b.remove(t0) is True
        assert b.next_flush_at() is None
        # The next admission starts a fresh window at its own time.
        b.add(self._ticket(1), now=7.0)
        assert b.next_flush_at() == pytest.approx(7.01)

    def test_remove_from_due_batch(self):
        b = MicroBatcher(window=10.0, max_batch_size=2)
        t0, t1 = self._ticket(0), self._ticket(1)
        b.add(t0, now=0.0)
        b.add(t1, now=0.0)  # closed
        assert b.remove(t0) is True
        (batch,) = b.collect_due(0.0)
        assert batch == [t1]

    def test_emptied_due_batch_disappears(self):
        b = MicroBatcher(window=10.0, max_batch_size=1)
        t0 = self._ticket(0)
        b.add(t0, now=0.0)
        assert b.remove(t0) is True
        assert b.collect_due(0.0) == []
        assert b.next_flush_at() is None

    def test_flush_all_ignores_window(self):
        b = MicroBatcher(window=10.0, max_batch_size=8)
        b.add(self._ticket(0), now=0.0)
        (batch,) = b.flush_all()
        assert len(batch) == 1 and len(b) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(window=-1.0, max_batch_size=4)
        with pytest.raises(ValueError):
            MicroBatcher(window=0.0, max_batch_size=0)


class TestAdmissionPolicy:
    def _policy(self, **kw):
        kw.setdefault("cost_budget", 0.1)
        kw.setdefault("default_cost", 0.05)
        kw.setdefault("max_queue_depth", 2)
        return AdmissionPolicy(CostModel(), **kw)

    def test_predict_falls_back_to_default(self):
        policy = self._policy()
        assert policy.predict(("rank", "dp", 6)) == 0.05

    def test_predict_uses_learned_ewma(self):
        costs = CostModel()
        costs.observe(("rank", "dp", 6), 0.3)
        policy = AdmissionPolicy(
            costs, cost_budget=1.0, default_cost=0.05, max_queue_depth=2
        )
        assert policy.predict(("rank", "dp", 6)) == pytest.approx(0.3)

    def test_admit_within_budget_then_queue_then_reject(self):
        policy = self._policy()  # budget 0.1 = two default-cost requests
        assert policy.decide(0.05, queue_depth=0) is Decision.ADMIT
        policy.acquire(0.05)
        assert policy.decide(0.05, queue_depth=0) is Decision.ADMIT
        policy.acquire(0.05)
        assert policy.decide(0.05, queue_depth=0) is Decision.QUEUE
        assert policy.decide(0.05, queue_depth=2) is Decision.REJECT

    def test_empty_server_override(self):
        # One request pricier than the whole budget still gets in when
        # nothing is in flight — pricing must never wedge the server.
        policy = self._policy()
        assert policy.can_admit(5.0) is True
        policy.acquire(5.0)
        assert policy.can_admit(0.001) is False
        policy.release(5.0)
        assert policy.can_admit(5.0) is True

    def test_release_clamps_at_zero(self):
        policy = self._policy()
        policy.acquire(0.05)
        policy.release(0.07)  # drifted estimate
        assert policy.inflight_cost == 0.0
        assert policy.inflight_count == 0
        assert policy.can_admit(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._policy(cost_budget=0.0)
        with pytest.raises(ValueError):
            self._policy(default_cost=-1.0)
        with pytest.raises(ValueError):
            self._policy(max_queue_depth=-1)


class TestCoalescing:
    def test_requests_within_window_coalesce_into_one_batch(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=16)
        requests = _requests(problem, 3)
        tickets = [driver.submit(r)[0] for r in requests]
        assert driver.tick() == []  # window still open
        driver.clock.advance(0.004)
        assert driver.tick() == []
        (batch,) = driver.advance(0.006)  # t = 0.01: window expires
        assert batch == tickets
        assert all(t.state == DISPATCHED for t in batch)
        driver.run_pending()
        assert driver.core.stats.dispatched_batches == 1
        assert driver.core.stats.largest_batch == 3
        assert all(w.result is not None for w in driver.waiters)

    def test_full_batch_dispatches_before_window(self, engine, problem):
        driver = CoreDriver(engine, batch_window=10.0, max_batch_size=2)
        driver.submit(_requests(problem, 1)[0])
        assert driver.tick() == []
        driver.submit(_requests(problem, 1)[0])
        (batch,) = driver.tick()  # no time passed at all
        assert len(batch) == 2
        assert driver.clock.now == 0.0

    def test_batches_split_across_windows(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=16)
        requests = _requests(problem, 2)
        driver.submit(requests[0])
        (first,) = driver.advance(0.01)
        driver.submit(requests[1])  # a fresh window opens now
        assert driver.tick() == []
        (second,) = driver.advance(0.01)
        assert [len(first), len(second)] == [1, 1]
        driver.run_pending()
        assert driver.core.stats.dispatched_batches == 2

    def test_coalesced_responses_match_serial_digest(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=3, seed=11)
        requests = _requests(problem, 8)
        for request in requests:
            driver.submit(request)
        driver.drain()
        served = [w.result for w in driver.waiters]
        assert all(r is not None for r in served)
        # Responses are re-indexed by submission order, so the digest is
        # directly comparable to one serial rank_many with the same seed.
        assert responses_digest(served) == _serial_digest(requests, 11)
        assert driver.core.stats.dispatched_batches >= 3  # cap forced splits

    def test_zero_window_still_coalesces_same_tick(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.0, max_batch_size=16)
        requests = _requests(problem, 3)
        for request in requests:
            driver.submit(request)
        (batch,) = driver.tick()  # flush_at == now: due immediately
        assert len(batch) == 3


class TestAdmissionFlow:
    def _driver(self, engine, **kw):
        kw.setdefault("batch_window", 10.0)  # park admitted tickets
        kw.setdefault("cost_budget", 0.1)
        kw.setdefault("default_cost", 0.05)
        kw.setdefault("max_queue_depth", 1)
        return CoreDriver(engine, **kw)

    def test_overflow_queues_then_rejects_with_arithmetic(self, engine, problem):
        driver = self._driver(engine)
        requests = _requests(problem, 4)
        t0, _ = driver.submit(requests[0])
        t1, _ = driver.submit(requests[1])
        assert t0.state == BATCHED and t1.state == BATCHED
        t2, _ = driver.submit(requests[2])
        assert t2.state == QUEUED
        with pytest.raises(ServerOverloaded) as exc_info:
            driver.submit(requests[3])
        err = exc_info.value
        assert err.predicted_cost == pytest.approx(0.05)
        assert err.inflight_cost == pytest.approx(0.1)
        assert err.cost_budget == pytest.approx(0.1)
        assert (err.queue_depth, err.max_queue_depth) == (1, 1)
        stats = driver.core.stats
        assert (stats.admitted, stats.queued, stats.rejected) == (2, 1, 1)

    def test_queued_ticket_promotes_fifo_when_budget_frees(self, engine, problem):
        driver = self._driver(engine, max_queue_depth=2, max_batch_size=2)
        requests = _requests(problem, 4)
        tickets = [driver.submit(r)[0] for r in requests]
        assert [t.state for t in tickets] == [BATCHED, BATCHED, QUEUED, QUEUED]
        driver.tick()  # max_batch_size=2: the admitted pair dispatched
        driver.run_pending()  # completion releases their budget
        driver.tick()  # promotion happens on the next tick
        assert tickets[2].state in (BATCHED, DISPATCHED)
        assert tickets[3].state in (BATCHED, DISPATCHED)
        assert driver.core.stats.promoted == 2
        driver.drain()
        assert all(w.result is not None for w in driver.waiters)

    def test_promotion_is_fifo(self, engine, problem):
        driver = self._driver(
            engine, max_queue_depth=3, cost_budget=0.05, max_batch_size=1
        )
        requests = _requests(problem, 3)
        t0, _ = driver.submit(requests[0])
        t1, _ = driver.submit(requests[1])
        t2, _ = driver.submit(requests[2])
        assert (t1.state, t2.state) == (QUEUED, QUEUED)
        driver.tick()
        driver.run_pending()  # t0 done, budget free
        driver.tick()
        # Only t1 fits (budget = one default cost); t2 must wait its turn.
        assert t1.state in (BATCHED, DISPATCHED)
        assert t2.state == QUEUED

    def test_learned_costs_price_admission(self, engine, problem):
        # Teach the engine's model that dp on this problem is expensive:
        # the very next submission of that kind must queue, not admit.
        engine.costs.observe(("rank", "dp", problem.n_items), 0.2)
        driver = self._driver(engine, cost_budget=0.25, max_queue_depth=4)
        dp = RankingRequest("dp", problem)
        t0, _ = driver.submit(dp)
        assert t0.cost == pytest.approx(0.2)
        t1, _ = driver.submit(dp)  # 0.2 + 0.2 > 0.25
        assert t1.state == QUEUED

    def test_closed_server_rejects_submissions(self, engine, problem):
        driver = self._driver(engine)
        driver.core.close()
        with pytest.raises(ServerClosed):
            driver.submit(_requests(problem, 1)[0])

    def test_unknown_algorithm_rejected_eagerly(self, engine, problem):
        driver = self._driver(engine)
        with pytest.raises(KeyError):
            driver.submit(RankingRequest("no-such-algorithm", problem))
        assert driver.core.live == 0


class TestDeadlines:
    def test_deadline_expires_queued_ticket_before_dispatch(self, engine, problem):
        driver = CoreDriver(
            engine, batch_window=10.0, cost_budget=0.05,
            default_cost=0.05, max_queue_depth=4,
        )
        requests = _requests(problem, 2)
        driver.submit(requests[0])
        t1, w1 = driver.submit(requests[1], deadline=0.5)
        assert t1.state == QUEUED
        driver.advance(0.5)
        assert isinstance(w1.error, DeadlineExceeded)
        assert w1.error.dispatched is False
        assert w1.error.request_id == "r1"
        assert t1.state == RETIRED
        assert driver.core.stats.expired_before_dispatch == 1
        driver.drain()  # the survivor is served; the expired one never dispatches
        assert driver.core.stats.dispatched_requests == 1

    def test_deadline_expires_batched_ticket_before_flush(self, engine, problem):
        driver = CoreDriver(engine, batch_window=1.0, max_batch_size=16)
        t0, w0 = driver.submit(_requests(problem, 1)[0], deadline=0.25)
        assert t0.state == BATCHED
        driver.advance(0.25)
        assert isinstance(w0.error, DeadlineExceeded) and not w0.error.dispatched
        # Its budget share came back and the window emptied out.
        assert driver.core.policy.inflight_count == 0
        assert driver.advance(1.0) == []  # nothing left to flush
        assert driver.core.live == 0

    def test_deadline_after_dispatch_releases_waiter_not_batch(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=16)
        requests = _requests(problem, 3)
        _, w_slow = driver.submit(requests[0], deadline=0.02)
        _, w_a = driver.submit(requests[1])
        _, w_b = driver.submit(requests[2])
        (batch,) = driver.advance(0.01)  # all three dispatched together
        driver.advance(0.02)  # deadline passes while the batch "computes"
        assert isinstance(w_slow.error, DeadlineExceeded)
        assert w_slow.error.dispatched is True
        # Budget stays charged until the compute actually finishes.
        assert driver.core.policy.inflight_count == 3
        driver.run_pending()
        # Batchmates are served normally; the late result is discarded.
        assert w_a.result is not None and w_b.result is not None
        assert w_slow.result is None
        assert driver.core.policy.inflight_count == 0
        assert driver.core.stats.expired_after_dispatch == 1
        assert driver.core.stats.completed == 2
        assert driver.core.live == 0

    def test_default_deadline_from_config(self, engine, problem):
        driver = CoreDriver(engine, batch_window=10.0, default_deadline=0.1)
        t0, _ = driver.submit(_requests(problem, 1)[0])
        assert t0.deadline_at == pytest.approx(0.1)

    def test_next_event_at_tracks_nearest_deadline(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.05, max_batch_size=16)
        driver.submit(_requests(problem, 1)[0], deadline=0.02)
        # The deadline (0.02) is nearer than the window flush (0.05).
        assert driver.core.next_event_at() == pytest.approx(0.02)

    def test_invalid_deadline_rejected(self, engine, problem):
        driver = CoreDriver(engine)
        with pytest.raises(ValueError):
            driver.submit(_requests(problem, 1)[0], deadline=0.0)


class TestCancellation:
    def test_cancel_before_dispatch_drops_from_window(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=16)
        requests = _requests(problem, 2)
        t0, w0 = driver.submit(requests[0])
        _, w1 = driver.submit(requests[1])
        w0.cancel()  # the client stopped waiting...
        driver.core.cancel(t0, driver.clock.now)  # ...and the shell tells the core
        (batch,) = driver.advance(0.01)
        assert len(batch) == 1  # the cancelled ticket never dispatches
        driver.run_pending()
        assert w1.result is not None
        assert w0.result is None and w0.error is None
        assert driver.core.stats.cancelled_before_dispatch == 1
        assert driver.core.live == 0

    def test_cancel_queued_ticket_frees_its_slot(self, engine, problem):
        driver = CoreDriver(
            engine, batch_window=10.0, cost_budget=0.05, max_queue_depth=1
        )
        requests = _requests(problem, 3)
        driver.submit(requests[0])
        t1, w1 = driver.submit(requests[1])
        assert t1.state == QUEUED
        w1.cancel()
        driver.core.cancel(t1, driver.clock.now)
        # The queue slot is free again: a new submission queues, not rejects.
        t2, _ = driver.submit(requests[2])
        assert t2.state == QUEUED

    def test_cancel_after_dispatch_discards_late_result(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.0, max_batch_size=16)
        t0, w0 = driver.submit(_requests(problem, 1)[0])
        (batch,) = driver.tick()
        w0.cancel()
        driver.core.cancel(t0, driver.clock.now)
        assert driver.core.stats.cancelled_after_dispatch == 1
        assert driver.core.policy.inflight_count == 1  # still computing
        driver.run_pending()
        assert w0.result is None and w0.error is None
        assert driver.core.policy.inflight_count == 0
        assert driver.core.live == 0

    def test_cancel_is_idempotent_and_ignores_retired(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.0)
        t0, _ = driver.submit(_requests(problem, 1)[0])
        driver.tick()
        driver.run_pending()
        before = driver.core.stats.cancelled_after_dispatch
        driver.core.cancel(t0, driver.clock.now)  # already served
        driver.core.cancel(t0, driver.clock.now)
        assert driver.core.stats.cancelled_after_dispatch == before


class TestShutdownSemantics:
    def test_closed_core_flushes_open_window_immediately(self, engine, problem):
        driver = CoreDriver(engine, batch_window=10.0, max_batch_size=16)
        driver.submit(_requests(problem, 1)[0])
        driver.core.close()
        (batch,) = driver.tick()  # no 10s wait: nothing new can join
        assert len(batch) == 1
        driver.run_pending()
        assert driver.waiters[0].result is not None

    def test_abort_pending_fails_undispatched_only(self, engine, problem):
        driver = CoreDriver(
            engine, batch_window=10.0, cost_budget=0.05, max_queue_depth=4
        )
        requests = _requests(problem, 3)
        t0, w0 = driver.submit(requests[0])
        t1, w1 = driver.submit(requests[1])
        driver.tick()  # nothing due: window parked, t1 queued
        driver.core.close()
        (batch,) = driver.tick()  # closed → flush dispatches t0
        driver.core.abort_pending(ServerClosed("stopping"), driver.clock.now)
        assert isinstance(w1.error, ServerClosed)
        assert w0.error is None  # dispatched work is not aborted
        driver.run_pending()
        assert w0.result is not None
        assert driver.core.live == 0


class TestFailureIsolation:
    def test_failing_request_poisons_only_itself(self, engine, problem):
        # mallows theta must be positive: theta=-1 raises inside the unit.
        driver = CoreDriver(engine, batch_window=0.01, max_batch_size=16)
        good = _requests(problem, 2)
        bad = RankingRequest(
            "mallows", problem, params={"theta": -1.0}, request_id="poison"
        )
        _, w_good0 = driver.submit(good[0])
        _, w_bad = driver.submit(bad)
        _, w_good1 = driver.submit(good[1])
        (batch,) = driver.advance(0.01)
        assert len(batch) == 3  # admission cannot see parameter validity
        driver.run_pending()
        assert isinstance(w_bad.error, ValueError)
        assert w_good0.result is not None and w_good1.result is not None
        stats = driver.core.stats
        assert (stats.completed, stats.failed) == (2, 1)
        assert driver.core.live == 0
        # The session stays fully serviceable after the failure.
        t, w = driver.submit(good[0])
        driver.drain()
        assert w.result is not None

    def test_batch_abort_fails_every_unresolved_ticket(self, engine, problem):
        driver = CoreDriver(engine, batch_window=0.0, max_batch_size=16)
        requests = _requests(problem, 2)
        _, w0 = driver.submit(requests[0])
        _, w1 = driver.submit(requests[1])
        (batch,) = driver.tick()
        boom = RuntimeError("pool died")
        driver.core.on_batch_aborted(batch, boom, driver.clock.now)
        assert w0.error is boom and w1.error is boom
        assert driver.core.live == 0
        assert driver.core.policy.inflight_count == 0


class TestDeterminismProperty:
    """Any interleaving of admitted requests == the serial loop."""

    @given(
        n_requests=st.integers(min_value=1, max_value=8),
        max_batch_size=st.integers(min_value=1, max_value=4),
        gaps=st.lists(
            st.sampled_from([0.0, 0.003, 0.007, 0.012]),
            min_size=0, max_size=8,
        ),
        run_between=st.lists(st.booleans(), min_size=0, max_size=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_matches_serial_digest(
        self, n_requests, max_batch_size, gaps, run_between, seed
    ):
        groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
        problem = FairRankingProblem.from_scores(scores, groups)
        requests = _requests(problem, n_requests)
        with RankingEngine(n_jobs=1) as eng:
            driver = CoreDriver(
                eng,
                batch_window=0.01,
                max_batch_size=max_batch_size,
                cost_budget=100.0,  # everything admits: no request drops
                seed=seed,
            )
            for i, request in enumerate(requests):
                driver.submit(request)
                if i < len(gaps):
                    driver.advance(gaps[i])
                if i < len(run_between) and run_between[i]:
                    driver.run_pending()
            driver.drain()
            served = [w.result for w in driver.waiters]
        assert all(response is not None for response in served)
        assert responses_digest(served) == _serial_digest(requests, seed)
