"""Asyncio integration tests of the serving tier (:mod:`repro.serve`).

The fake-clock suite (``test_serve_batching.py``) proves the semantics;
this file proves the *shell*: real event loop, many concurrent client
coroutines, real micro-batch dispatch through the engine — and the
headline contracts on top:

* the CI smoke lane: >= 32 concurrent mixed-kind requests at two workers
  serve a response set byte-identical to the serial loop, with zero
  leaked tasks or serve threads after shutdown;
* digest equality holds for ``n_jobs`` in {1, 2, 4};
* structured overload rejection, client cancellation, deadline expiry
  and per-request failure isolation all surface through ``await``.

No test here asserts on ``time.sleep`` — waiting happens only on server
futures and the loop's own timers.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.engine import RankingEngine, RankingRequest, responses_digest
from repro.groups.attributes import GroupAssignment
from repro.serve import (
    AsyncRankingServer,
    DeadlineExceeded,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    run_load,
    synthetic_requests,
)

SEED = 2026


def run(coro):
    """Drive one test coroutine on a fresh event loop."""
    return asyncio.run(coro)


def _problem():
    groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    return FairRankingProblem.from_scores(scores, groups)


def _serial_digest(requests, seed):
    with RankingEngine(n_jobs=1) as ref:
        return responses_digest(ref.rank_many(requests, seed=seed, n_jobs=1))


def _serve_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-serve")
    ]


class TestLifecycle:
    def test_double_start_and_unstarted_submit_rejected(self):
        async def scenario():
            engine = RankingEngine(n_jobs=1)
            server = AsyncRankingServer(engine)
            with pytest.raises(RuntimeError):
                server.stats()
            with pytest.raises(RuntimeError):
                await server.submit(RankingRequest("dp", _problem()))
            await server.start()
            with pytest.raises(RuntimeError):
                await server.start()
            await server.stop()
            assert not server.started

        run(scenario())

    def test_stop_is_idempotent(self):
        async def scenario():
            engine = RankingEngine(n_jobs=1)
            server = await AsyncRankingServer(engine).start()
            await server.stop()
            await server.stop()

        run(scenario())

    def test_config_overrides_compose(self):
        engine = RankingEngine(n_jobs=1)
        base = ServeConfig(batch_window=0.5, max_batch_size=4)
        server = AsyncRankingServer(engine, base, max_batch_size=8)
        assert server.config.batch_window == 0.5
        assert server.config.max_batch_size == 8

    def test_stop_without_drain_fails_pending_with_server_closed(self):
        async def scenario():
            engine = RankingEngine(n_jobs=1)
            server = await AsyncRankingServer(
                engine, batch_window=30.0, seed=SEED
            ).start()
            waiter = asyncio.ensure_future(
                server.submit(RankingRequest("dp", _problem()))
            )
            await asyncio.sleep(0)  # let the submission reach the core
            await server.stop(drain=False)
            with pytest.raises(ServerClosed):
                await waiter

        run(scenario())

    def test_stop_with_drain_serves_parked_window(self):
        async def scenario():
            engine = RankingEngine(n_jobs=1)
            server = await AsyncRankingServer(
                engine, batch_window=30.0, seed=SEED
            ).start()
            waiter = asyncio.ensure_future(
                server.submit(RankingRequest("dp", _problem()))
            )
            await asyncio.sleep(0)
            # Window is 30s out, but a draining stop flushes it now.
            await server.stop()
            response = await waiter
            assert response.algorithm == "dp"

        run(scenario())

    def test_stop_with_drain_serves_queued_undispatched_requests(self):
        """A draining stop must serve requests still *queued* behind the
        admission budget — not just parked windows: the queue promotes
        as budget frees, even though the core is closed to new work.
        This is the drain contract the HTTP frontend's SIGTERM path
        leans on."""

        async def scenario():
            engine = RankingEngine(n_jobs=1)
            # Budget admits exactly one default-cost request; the rest
            # of the burst waits in the admission queue, undispatched.
            server = await AsyncRankingServer(
                engine,
                batch_window=0.0,
                max_batch_size=1,
                cost_budget=0.05,
                default_cost=0.05,
                max_queue_depth=8,
                seed=SEED,
            ).start()
            waiters = [
                asyncio.ensure_future(
                    server.submit(RankingRequest("dp", _problem()))
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # submissions reach the core
            stats = server.stats()
            assert stats.queued >= 2
            await server.stop()
            responses = await asyncio.gather(*waiters)
            assert [r.algorithm for r in responses] == ["dp"] * 4
            assert stats.completed == 4

        run(scenario())

    def test_stop_without_drain_fails_queued_undispatched_requests(self):
        """``drain=False`` fails queued-but-undispatched requests with
        :class:`ServerClosed` instead of serving them."""

        async def scenario():
            engine = RankingEngine(n_jobs=1)
            server = await AsyncRankingServer(
                engine,
                batch_window=30.0,
                max_batch_size=1,
                cost_budget=0.05,
                default_cost=0.05,
                max_queue_depth=8,
                seed=SEED,
            ).start()
            waiters = [
                asyncio.ensure_future(
                    server.submit(RankingRequest("dp", _problem()))
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            assert server.stats().queued >= 2
            await server.stop(drain=False)
            outcomes = await asyncio.gather(*waiters, return_exceptions=True)
            assert all(isinstance(o, ServerClosed) for o in outcomes)

        run(scenario())


class TestServingContracts:
    def test_ci_smoke_concurrent_digest_and_clean_shutdown(self):
        """The CI serving smoke lane: an in-process server under >= 32
        concurrent mixed-kind clients at two workers must (a) serve every
        request, (b) digest byte-identically to the serial loop, and
        (c) shut down with zero leaked tasks or serve threads."""
        requests = synthetic_requests(32, seed=5)

        async def scenario():
            baseline_tasks = asyncio.all_tasks()
            with RankingEngine(n_jobs=2) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=0.005, seed=SEED, n_jobs=2
                ) as server:
                    report = await run_load(server, requests)
                    stats = server.stats()
                assert report.served == 32, report.summary()
                assert stats.completed == 32
                assert stats.dispatched_batches >= 1
            leaked = asyncio.all_tasks() - baseline_tasks
            return report.digest(), leaked

        digest, leaked = run(scenario())
        assert digest == _serial_digest(requests, SEED)
        assert leaked == set()
        assert _serve_threads() == []

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_digest_matches_serial_for_every_worker_count(self, n_jobs):
        requests = synthetic_requests(16, seed=9)

        async def scenario():
            with RankingEngine(n_jobs=n_jobs) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=0.003, seed=SEED, n_jobs=n_jobs
                ) as server:
                    report = await run_load(server, requests)
            assert report.served == 16, report.summary()
            return report.digest()

        assert run(scenario()) == _serial_digest(requests, SEED)

    def test_pinned_seed_requests_do_not_shift_neighbours(self):
        """A request pinning its own seed must not change what its
        neighbours are served — the server spawns a child per submission
        unconditionally, exactly like ``rank_many``."""
        problem = _problem()

        def make(pin_middle):
            reqs = [
                RankingRequest(
                    "mallows", problem,
                    params={"theta": 0.5, "n_samples": 6},
                    request_id=f"m{i}",
                )
                for i in range(3)
            ]
            if pin_middle:
                from dataclasses import replace
                reqs[1] = replace(reqs[1], seed=12345)
            return reqs

        async def serve(reqs):
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=0.005, seed=SEED
                ) as server:
                    return await asyncio.gather(
                        *(server.submit(r) for r in reqs)
                    )

        unpinned = run(serve(make(False)))
        pinned = run(serve(make(True)))
        # Neighbours 0 and 2 are untouched by request 1's pinned seed.
        for i in (0, 2):
            assert np.array_equal(
                unpinned[i].ranking.order, pinned[i].ranking.order
            )
        assert pinned[1].ranking is not None

    def test_overload_rejection_is_structured_and_immediate(self):
        async def scenario():
            problem = _problem()
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine,
                    batch_window=30.0,  # park the first request in flight
                    cost_budget=0.05,
                    default_cost=0.05,
                    max_queue_depth=0,
                    seed=SEED,
                ) as server:
                    first = asyncio.ensure_future(
                        server.submit(RankingRequest("dp", problem))
                    )
                    await asyncio.sleep(0)
                    with pytest.raises(ServerOverloaded) as exc_info:
                        await server.submit(RankingRequest("dp", problem))
                    err = exc_info.value
                    assert err.cost_budget == pytest.approx(0.05)
                    assert err.inflight_cost == pytest.approx(0.05)
                    assert err.max_queue_depth == 0
                    assert server.stats().rejected == 1
                    # The draining stop still serves the parked request.
                response = await first
                assert response.algorithm == "dp"

        run(scenario())

    def test_client_cancellation_drops_request_and_server_lives_on(self):
        async def scenario():
            problem = _problem()
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=30.0, seed=SEED
                ) as server:
                    doomed = asyncio.ensure_future(
                        server.submit(RankingRequest("dp", problem))
                    )
                    await asyncio.sleep(0)
                    doomed.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await doomed
                    stats = server.stats()
                    assert stats.cancelled_before_dispatch == 1
                    # The server is not poisoned: a fresh request serves
                    # (parked in the 30s window, flushed by the drain).
                    follow = asyncio.ensure_future(
                        server.rank("dp", problem)
                    )
                    await asyncio.sleep(0)
                response = await follow
                assert response.algorithm == "dp"
                assert stats.completed == 1

        run(scenario())

    def test_deadline_expires_parked_request(self):
        async def scenario():
            problem = _problem()
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=30.0, max_batch_size=16, seed=SEED
                ) as server:
                    with pytest.raises(DeadlineExceeded) as exc_info:
                        await server.submit(
                            RankingRequest("dp", problem, request_id="late"),
                            deadline=0.01,
                        )
                    assert exc_info.value.dispatched is False
                    assert exc_info.value.request_id == "late"
                    assert server.stats().expired_before_dispatch == 1

        run(scenario())

    def test_failing_request_poisons_only_itself(self):
        async def scenario():
            problem = _problem()
            good = [
                RankingRequest("dp", problem, request_id="g0"),
                RankingRequest("ipf", problem, request_id="g1"),
            ]
            bad = RankingRequest(
                "mallows", problem, params={"theta": -1.0}, request_id="bad"
            )
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=0.005, seed=SEED
                ) as server:
                    results = await asyncio.gather(
                        server.submit(good[0]),
                        server.submit(bad),
                        server.submit(good[1]),
                        return_exceptions=True,
                    )
                    assert isinstance(results[1], ValueError)
                    assert results[0].request_id == "g0"
                    assert results[2].request_id == "g1"
                    stats = server.stats()
                    assert (stats.completed, stats.failed) == (2, 1)
                    # Still serviceable afterwards.
                    again = await server.rank("dp", problem)
                    assert again.algorithm == "dp"

        run(scenario())

    def test_warm_started_costs_price_admission_from_first_request(
        self, tmp_path
    ):
        """The dead-code-no-more path: a persisted BENCH cost table merged
        at startup changes the very first admission decisions."""
        problem = _problem()
        kind_label = f"rank:dp:{problem.n_items}"
        bench = {
            "reports": [
                {
                    "name": "bench_engine.py::test_x",
                    "metrics": {
                        "cost_table": {
                            kind_label: {
                                "ewma_seconds": 0.4,
                                "observations": 5,
                            }
                        }
                    },
                }
            ]
        }
        path = tmp_path / "BENCH_WARM.json"
        path.write_text(json.dumps(bench))

        async def queued_after_two(warm):
            with RankingEngine(n_jobs=1) as engine:
                if warm:
                    assert engine.warm_start_costs(path) == 1
                async with AsyncRankingServer(
                    engine,
                    batch_window=30.0,
                    cost_budget=0.5,
                    default_cost=0.01,
                    max_queue_depth=8,
                    seed=SEED,
                ) as server:
                    a = asyncio.ensure_future(
                        server.submit(RankingRequest("dp", problem))
                    )
                    b = asyncio.ensure_future(
                        server.submit(RankingRequest("dp", problem))
                    )
                    await asyncio.sleep(0)
                    queued = server.stats().queued
                await asyncio.gather(a, b)  # draining stop serves both
                return queued

        # Cold model: both dp requests fit the 0.5s budget at 0.01 each.
        assert run(queued_after_two(False)) == 0
        # Warm model: 0.4 + 0.4 > 0.5, so the second must queue.
        assert run(queued_after_two(True)) == 1


class TestStatsAndLoadgen:
    def test_stats_latency_percentiles_per_kind(self):
        requests = synthetic_requests(12, seed=2)

        async def scenario():
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine, batch_window=0.005, seed=SEED
                ) as server:
                    report = await run_load(server, requests)
                    stats = server.stats()
                    assert stats.coalescing >= 1.0
                    percentiles = stats.latency_percentiles()
            assert report.served == 12
            assert percentiles  # at least one kind observed
            for label, summary in percentiles.items():
                assert label.startswith("rank:")
                assert set(summary) == {"p50", "p95", "p99"}
                assert 0.0 <= summary["p50"] <= summary["p99"]
            assert "submitted" in stats.summary()

        run(scenario())

    def test_synthetic_requests_are_reproducible_and_mixed(self):
        a = synthetic_requests(12, seed=7)
        b = synthetic_requests(12, seed=7)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert len({r.algorithm for r in a}) >= 3
        assert len({r.problem.n_items for r in a}) == 2
        for x, y in zip(a, b):
            assert np.array_equal(x.problem.scores, y.problem.scores)

    def test_load_report_counts_outcomes_without_raising(self):
        requests = synthetic_requests(6, seed=4)

        async def scenario():
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine,
                    batch_window=0.002,
                    cost_budget=0.05,
                    default_cost=0.05,
                    max_queue_depth=1,
                    seed=SEED,
                ) as server:
                    return await run_load(server, requests)

        report = run(scenario())
        assert report.served + report.rejected == report.n_requests
        assert report.failed == 0
        assert "served" in report.summary()

    def test_load_retries_recover_rejections(self):
        requests = synthetic_requests(6, seed=4)

        async def scenario():
            with RankingEngine(n_jobs=1) as engine:
                async with AsyncRankingServer(
                    engine,
                    batch_window=0.002,
                    cost_budget=0.05,
                    default_cost=0.05,
                    max_queue_depth=1,
                    seed=SEED,
                ) as server:
                    return await run_load(
                        server, requests, max_retries=50, retry_backoff=0.005
                    )

        report = run(scenario())
        assert report.served == report.n_requests, report.summary()
