"""Tests for :mod:`repro.faults` — supervised pool recovery, deterministic
retries, fault injection, and the serving tier's health circuit breaker.

The contract under test: worker *crashes* are recovered under a bounded
:class:`~repro.faults.RetryPolicy` with the units' original seeds, so
recovery is byte-invisible in every digest; application faults keep their
historical fail-fast semantics; and when the budget is spent the run either
degrades to inline execution (batch default) or surfaces
:class:`~repro.exceptions.PoolRecoveryExhausted` so the serve tier can trip
its circuit breaker.

Every retry-path test is sleep-free: policies carry a recording fake sleep,
and the breaker suite runs on the fake-clock harness in
``serve_harness.py``.  Real worker processes die for real (``os._exit`` via
the injection plan) only in the pooled chaos tests.
"""

from __future__ import annotations

import asyncio
import pickle

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.batch import WorkUnit, WorkerPool, run_units
from repro.engine import RankingEngine, RankingRequest, responses_digest
from repro.exceptions import (
    InjectedFault,
    PoolRecoveryExhausted,
    WorkerCrashError,
)
from repro.faults import (
    ANY_KEY,
    DEGRADE_INLINE,
    DEGRADE_RAISE,
    FAULT_ENV_VAR,
    FaultCounters,
    FaultSpec,
    GLOBAL_FAULTS,
    InjectionPlan,
    RetryPolicy,
    clear_plan,
    configured_plan,
    inject_faults,
    install_plan,
    maybe_inject,
    parse_fault_specs,
    plan_from_env,
)
from repro.faults.injection import _install_worker_plan
from repro.groups.attributes import GroupAssignment
from repro.serve import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AsyncRankingServer,
    ServerUnhealthy,
)

from serve_harness import CoreDriver

SEED = 2026

#: One crash per run: every unit's first attempt hard-exits the worker,
#: every retry (attempt >= 1) succeeds — the canonical recoverable chaos.
CRASH_ONCE = "*:0:exit"
#: Crash attempts 0..2 — enough to exhaust the default 3-attempt budget.
CRASH_ALWAYS = "*:0:exit;*:1:exit;*:2:exit"


class RecordingSleep:
    """A fake ``RetryPolicy.sleep``: remembers delays, never blocks."""

    def __init__(self):
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(seconds)


def _no_sleep(_seconds):
    pass


def _policy(**overrides):
    """A supervised policy with a recording sleep (zero real sleeps)."""
    recorder = RecordingSleep()
    overrides.setdefault("sleep", recorder)
    return RetryPolicy(**overrides), overrides["sleep"]


def _draw_unit(seed, count):
    """Seeded unit: the raw stream identity of its SeedSequence."""
    return np.random.default_rng(seed).random(count).tolist()


def _units(n=6):
    seqs = np.random.SeedSequence(77).spawn(n)
    return [
        WorkUnit(
            key=("draw", i),
            fn=_draw_unit,
            seed=seqs[i],
            payload=(3,),
            weight=float(n - i),
        )
        for i in range(n)
    ]


def _problem():
    groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    return FairRankingProblem.from_scores(scores, groups)


def _requests(problem, n):
    cycle = (
        ("dp", {}),
        ("mallows", {"theta": 0.5, "n_samples": 5}),
        ("detconstsort", {}),
        ("ipf", {}),
    )
    return [
        RankingRequest(
            cycle[i % len(cycle)][0],
            problem,
            params=dict(cycle[i % len(cycle)][1]),
            request_id=f"f{i}",
        )
        for i in range(n)
    ]


class TestRetryPolicy:
    def test_defaults_are_valid_and_frozen(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.max_rebuilds == 2
        assert policy.on_exhausted == DEGRADE_INLINE
        with pytest.raises(AttributeError):
            policy.max_attempts = 5

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_attempts": 0},
            {"max_rebuilds": -1},
            {"backoff_base": -0.1},
            {"backoff_multiplier": 0.5},
            {"backoff_cap": -1.0},
            {"on_exhausted": "panic"},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_base=0.05, backoff_multiplier=2.0, backoff_cap=0.3
        )
        assert [policy.backoff(r) for r in range(1, 5)] == [
            pytest.approx(0.05),
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),  # capped
        ]
        with pytest.raises(ValueError):
            policy.backoff(0)

    def test_zero_base_means_no_delay(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.backoff(1) == 0.0
        assert policy.backoff(7) == 0.0


class TestInjectionPlan:
    def test_parse_single_spec(self):
        plan = parse_fault_specs("('draw', 1):0:exit")
        (spec,) = plan.specs
        assert spec.key == "('draw', 1)"
        assert spec.attempt == 0
        assert spec.action == "exit"
        assert bool(plan)

    def test_parse_multiple_specs_with_stall_seconds(self):
        plan = parse_fault_specs("*:0:exit;*:1:stall:0.25")
        assert len(plan.specs) == 2
        assert plan.specs[1].action == "stall"
        assert plan.specs[1].seconds == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "text", ["", "k:0", "k:zero:exit", "k:0:vanish", "k:-1:exit"]
    )
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            parse_fault_specs(text)

    def test_matches_by_attempt_and_key(self):
        spec = FaultSpec(key="('draw', 1)", attempt=1, action="raise")
        assert spec.matches(("draw", 1), 1)  # str(key) match
        assert not spec.matches(("draw", 1), 0)  # wrong attempt
        assert not spec.matches(("draw", 2), 1)  # wrong key
        wildcard = FaultSpec(key=ANY_KEY, attempt=0, action="exit")
        assert wildcard.matches(("anything",), 0)
        assert not wildcard.matches(("anything",), 1)

    def test_spec_for_returns_first_match(self):
        plan = InjectionPlan(
            specs=(
                FaultSpec(key=ANY_KEY, attempt=0, action="exit"),
                FaultSpec(key="k", attempt=0, action="raise"),
            )
        )
        assert plan.spec_for("k", 0).action == "exit"
        assert plan.spec_for("k", 3) is None
        assert not InjectionPlan()

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "*:0:raise")
        plan = plan_from_env()
        assert plan is not None and plan.specs[0].action == "raise"
        monkeypatch.setenv(FAULT_ENV_VAR, "  ")
        assert plan_from_env() is None

    def test_install_and_clear_roundtrip(self):
        plan = parse_fault_specs(CRASH_ONCE)
        assert configured_plan() is None
        install_plan(plan)
        try:
            assert configured_plan() is plan
        finally:
            clear_plan()
        assert configured_plan() is None

    def test_inject_faults_context_always_clears(self):
        plan = parse_fault_specs(CRASH_ONCE)
        with pytest.raises(RuntimeError):
            with inject_faults(plan):
                assert configured_plan() is plan
                raise RuntimeError("boom")
        assert configured_plan() is None

    def test_maybe_inject_fires_only_the_matching_fault(self):
        # Worker-side activation, exercised in-process with non-lethal
        # actions (the exit action is covered by the pooled chaos tests).
        plan = parse_fault_specs("k:1:raise;k:2:stall:0.0")
        _install_worker_plan(plan)
        try:
            maybe_inject("k", 0)  # no match: no-op
            with pytest.raises(InjectedFault, match="attempt 1"):
                maybe_inject("k", 1)
            maybe_inject("k", 2)  # stall of 0.0s: returns immediately
        finally:
            _install_worker_plan(None)
        maybe_inject("k", 1)  # plan cleared: no-op again


class TestSupervisedRecovery:
    def test_crash_is_recovered_with_original_seeds(self):
        units = _units()
        inline = run_units(units, n_jobs=1)
        policy, sleep = _policy()
        counters = FaultCounters()
        with inject_faults(parse_fault_specs(CRASH_ONCE)):
            pooled = run_units(
                units, n_jobs=2, policy=policy, counters=counters
            )
        assert pooled == inline
        assert counters.crash_faults >= 1
        assert counters.rebuilds >= 1
        assert counters.retried_units >= 1
        assert counters.degraded_units == 0
        assert counters.exhausted_units == 0
        # Backoff was computed and recorded but never actually slept.
        assert sleep.calls == [pytest.approx(policy.backoff(r))
                               for r in range(1, counters.rebuilds + 1)]
        assert counters.backoff_seconds == pytest.approx(sum(sleep.calls))
        # The process-wide tally saw the same recovery.
        assert GLOBAL_FAULTS.crash_faults == counters.crash_faults

    def test_application_fault_is_not_retried(self):
        units = _units(4)
        policy, _ = _policy()
        counters = FaultCounters()
        with inject_faults(parse_fault_specs("('draw', 2):0:raise")):
            with pytest.raises(InjectedFault):
                run_units(units, n_jobs=2, policy=policy, counters=counters)
        assert not counters  # no crash, no rebuild, no budget spent

    def test_exhausted_budget_degrades_to_inline_with_one_warning(self):
        units = _units()
        inline = run_units(units, n_jobs=1)
        policy, _ = _policy(max_rebuilds=1)
        counters = FaultCounters()
        with inject_faults(parse_fault_specs(CRASH_ALWAYS)):
            with pytest.warns(RuntimeWarning, match="inline"):
                pooled = run_units(
                    units, n_jobs=2, policy=policy, counters=counters
                )
        # Same bytes — the stragglers re-ran serially with their original
        # seeds (the parent process never activates an injection plan).
        assert pooled == inline
        assert counters.rebuilds == policy.max_rebuilds
        assert counters.degraded_units >= 1
        assert counters.exhausted_units == 0

    def test_exhausted_budget_raises_under_raise_mode(self):
        units = _units(4)
        policy, _ = _policy(max_rebuilds=0, on_exhausted=DEGRADE_RAISE)
        counters = FaultCounters()
        with inject_faults(parse_fault_specs(CRASH_ALWAYS)):
            with pytest.raises(PoolRecoveryExhausted) as exc_info:
                run_units(units, n_jobs=2, policy=policy, counters=counters)
        err = exc_info.value
        assert isinstance(err, WorkerCrashError)
        assert err.rebuilds == 0
        assert err.max_rebuilds == 0
        assert err.max_attempts == policy.max_attempts
        assert len(err.keys) >= 1
        assert counters.exhausted_units == len(err.keys)
        assert counters.degraded_units == 0

    def test_pool_recovery_exhausted_pickles(self):
        err = PoolRecoveryExhausted(
            keys=(("draw", 0), ("draw", 1)),
            rebuilds=2,
            max_rebuilds=2,
            max_attempts=3,
        )
        clone = pickle.loads(pickle.dumps(err))
        assert clone.keys == err.keys
        assert clone.rebuilds == 2
        assert clone.max_rebuilds == 2
        assert clone.max_attempts == 3
        assert str(clone) == str(err)

    def test_worker_pool_handle_carries_policy_but_not_identity(self):
        # Counters are per-session state, excluded from value semantics;
        # the handle stays cheap, comparable, and picklable.
        assert WorkerPool(2, counters=FaultCounters()) == WorkerPool(2)
        policy = RetryPolicy(max_attempts=5)
        pool = WorkerPool(2, policy=policy)
        assert pool != WorkerPool(2)
        assert pickle.loads(pickle.dumps(pool)).policy == policy

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_run_all_digest_survives_worker_crash(self, n_jobs):
        """The acceptance criterion: a worker hard-exit mid-``run_all``
        recovers to bytes identical to the fault-free serial run."""
        from repro.experiments.runner import reports_digest, run_all

        serial = reports_digest(run_all(fast=True, n_jobs=1))
        with inject_faults(parse_fault_specs(CRASH_ONCE)):
            chaos = reports_digest(run_all(fast=True, n_jobs=n_jobs))
        assert chaos == serial
        assert GLOBAL_FAULTS.crash_faults >= 1
        assert GLOBAL_FAULTS.rebuilds >= 1


class TestEngineFaultStats:
    def test_engine_stats_report_recovery(self):
        problem = _problem()
        requests = _requests(problem, 6)
        with RankingEngine(n_jobs=1) as ref:
            serial = responses_digest(
                ref.rank_many(requests, seed=SEED, n_jobs=1)
            )
        retry, _ = _policy()
        with inject_faults(parse_fault_specs(CRASH_ONCE)):
            with RankingEngine(n_jobs=2, retry=retry) as engine:
                responses = list(
                    engine.rank_many(requests, seed=SEED, n_jobs=2)
                )
                stats = engine.stats()
        assert responses_digest(responses) == serial
        assert stats.faults["crash_faults"] >= 1
        assert stats.faults["rebuilds"] >= 1
        assert "faults:" in stats.summary()

    def test_fault_free_engine_stats_stay_silent(self):
        problem = _problem()
        with RankingEngine(n_jobs=1) as engine:
            engine.rank_many(_requests(problem, 2), seed=SEED, n_jobs=1)
            stats = engine.stats()
        assert not any(stats.faults.values())
        assert "faults:" not in stats.summary()


def _exhausted(keys=(("draw", 0),)):
    return PoolRecoveryExhausted(
        keys=tuple(keys), rebuilds=2, max_rebuilds=2, max_attempts=3
    )


@pytest.fixture
def problem():
    return _problem()


@pytest.fixture
def engine():
    with RankingEngine(n_jobs=1) as eng:
        yield eng


class TestCircuitBreaker:
    """Fake-clock state-machine tests: open, shed, probe, close — no
    real pool dies here; exhaustion arrives via ``on_batch_aborted``
    exactly as the dispatch loop delivers it."""

    COOLDOWN = 5.0

    def _driver(self, engine, **overrides):
        overrides.setdefault("batch_window", 0.01)
        overrides.setdefault("max_batch_size", 4)
        overrides.setdefault("breaker_cooldown", self.COOLDOWN)
        return CoreDriver(engine, **overrides)

    def _trip(self, driver, problem):
        """Dispatch one request and kill its batch with pool exhaustion."""
        _, waiter = driver.submit(_requests(problem, 1)[0])
        (batch,) = driver.advance(0.01)
        driver.pending.clear()
        driver.core.on_batch_aborted(batch, _exhausted(), driver.clock.now)
        return waiter

    def test_pool_exhaustion_trips_breaker_and_sheds(self, engine, problem):
        driver = self._driver(engine)
        waiter = self._trip(driver, problem)
        assert isinstance(waiter.error, PoolRecoveryExhausted)
        assert driver.core.breaker_state == BREAKER_OPEN
        assert not driver.core.healthy
        stats = driver.core.stats
        assert stats.pool_failures == 1
        assert stats.breaker_opened == 1
        before = stats.submitted
        with pytest.raises(ServerUnhealthy) as exc_info:
            driver.submit(_requests(problem, 1)[0])
        err = exc_info.value
        assert err.state == BREAKER_OPEN
        assert err.retry_after == pytest.approx(self.COOLDOWN)
        assert stats.shed_unhealthy == 1
        # Shed before admission: no submission counted, no seed consumed.
        assert stats.submitted == before

    def test_retry_after_shrinks_as_cooldown_elapses(self, engine, problem):
        driver = self._driver(engine)
        self._trip(driver, problem)
        driver.clock.advance(self.COOLDOWN * 0.6)
        with pytest.raises(ServerUnhealthy) as exc_info:
            driver.submit(_requests(problem, 1)[0])
        assert exc_info.value.retry_after == pytest.approx(
            self.COOLDOWN * 0.4
        )

    def test_probe_success_closes_breaker(self, engine, problem):
        driver = self._driver(engine)
        self._trip(driver, problem)
        driver.clock.advance(self.COOLDOWN)
        # First admission after cooldown becomes the probe...
        _, probe_waiter = driver.submit(_requests(problem, 1)[0])
        assert driver.core.breaker_state == BREAKER_HALF_OPEN
        assert driver.core.stats.breaker_probes == 1
        # ...and holds the floor: concurrent admissions still shed.
        with pytest.raises(ServerUnhealthy):
            driver.submit(_requests(problem, 1)[0])
        assert driver.core.stats.shed_unhealthy == 1
        driver.advance(0.01)
        driver.run_pending()
        assert probe_waiter.result is not None
        assert driver.core.breaker_state == BREAKER_CLOSED
        assert driver.core.stats.breaker_closed == 1
        # The floor is open again.
        _, waiter = driver.submit(_requests(problem, 1)[0])
        driver.drain()
        assert waiter.result is not None

    def test_probe_request_error_still_closes_breaker(self, engine, problem):
        # A per-request failure proves the pool executed the batch; only
        # pool-level exhaustion keeps the breaker open.
        driver = self._driver(engine)
        self._trip(driver, problem)
        driver.clock.advance(self.COOLDOWN)
        _, probe_waiter = driver.submit(_requests(problem, 1)[0])
        (batch,) = driver.advance(0.01)
        driver.pending.clear()
        driver.core.on_request_error(
            batch[0], ValueError("bad request"), driver.clock.now
        )
        assert isinstance(probe_waiter.error, ValueError)
        assert driver.core.breaker_state == BREAKER_CLOSED

    def test_probe_failure_reopens_breaker(self, engine, problem):
        driver = self._driver(engine)
        self._trip(driver, problem)
        driver.clock.advance(self.COOLDOWN)
        _, probe_waiter = driver.submit(_requests(problem, 1)[0])
        (batch,) = driver.advance(0.01)
        driver.pending.clear()
        driver.core.on_batch_aborted(batch, _exhausted(), driver.clock.now)
        assert isinstance(probe_waiter.error, PoolRecoveryExhausted)
        assert driver.core.breaker_state == BREAKER_OPEN
        assert driver.core.stats.pool_failures == 2
        assert driver.core.stats.breaker_opened == 2

    def test_cancelled_probe_frees_the_probe_slot(self, engine, problem):
        driver = self._driver(engine)
        self._trip(driver, problem)
        driver.clock.advance(self.COOLDOWN)
        ticket, _ = driver.submit(_requests(problem, 1)[0])
        driver.core.cancel(ticket, driver.clock.now)
        # The abandoned probe must not wedge half-open: the next
        # admission takes over as the new probe instead of shedding.
        _, waiter = driver.submit(_requests(problem, 1)[0])
        assert driver.core.stats.breaker_probes == 2
        driver.drain()
        assert waiter.result is not None
        assert driver.core.breaker_state == BREAKER_CLOSED

    def test_settled_batchmates_keep_their_results(self, engine, problem):
        driver = self._driver(engine, batch_window=10.0, max_batch_size=2)
        r1, r2 = _requests(problem, 2)
        _, w1 = driver.submit(r1)
        _, w2 = driver.submit(r2)
        (batch,) = driver.tick()  # full batch dispatches immediately
        driver.pending.clear()
        driver.core.on_request_error(
            batch[0], ValueError("poisoned"), driver.clock.now
        )
        driver.core.on_batch_aborted(batch, _exhausted(), driver.clock.now)
        # Only the unsettled batchmate sees the pool failure.
        assert isinstance(w1.error, ValueError)
        assert isinstance(w2.error, PoolRecoveryExhausted)
        assert driver.core.stats.failed == 2


class TestServedChaos:
    """Asyncio integration: real event loop, real worker deaths."""

    def test_served_load_survives_injected_crash_byte_identically(self):
        """The serving acceptance criterion, recoverable half: a worker
        hard-exit under load is absorbed by the supervised scheduler and
        the served bytes match the fault-free serial loop."""
        problem = _problem()
        requests = _requests(problem, 8)
        with RankingEngine(n_jobs=1) as ref:
            serial = responses_digest(
                ref.rank_many(requests, seed=SEED, n_jobs=1)
            )
        retry = RetryPolicy(on_exhausted=DEGRADE_RAISE, sleep=_no_sleep)

        async def scenario():
            with RankingEngine(n_jobs=2) as engine:
                async with AsyncRankingServer(
                    engine,
                    # A generous window so the gathered submissions coalesce
                    # into multi-unit batches — single-unit batches run
                    # inline and would dodge the pool (and the fault).
                    batch_window=0.05,
                    seed=SEED,
                    n_jobs=2,
                    retry=retry,
                ) as server:
                    responses = await asyncio.gather(
                        *(server.submit(r) for r in requests)
                    )
                stats = engine.stats()
            return responses, stats

        with inject_faults(parse_fault_specs(CRASH_ONCE)):
            responses, stats = asyncio.run(scenario())
        assert responses_digest(responses) == serial
        assert stats.faults["crash_faults"] >= 1

    def test_exhausted_recovery_fails_batch_and_sheds_until_probe(self):
        """The unrecoverable half: retries exhaust, the affected request
        gets ``PoolRecoveryExhausted``, the breaker sheds new admissions
        with Retry-After, and ``ServeStats`` tells the truth."""
        problem = _problem()
        retry = RetryPolicy(
            max_rebuilds=0, on_exhausted=DEGRADE_RAISE, sleep=_no_sleep
        )

        async def scenario():
            with RankingEngine(n_jobs=2) as engine:
                async with AsyncRankingServer(
                    engine,
                    batch_window=0.05,
                    seed=SEED,
                    n_jobs=2,
                    retry=retry,
                    breaker_cooldown=30.0,
                ) as server:
                    # Two coalesced requests: the batch is pooled (size
                    # >= 2), crashes on every attempt, and exhausts its
                    # zero-rebuild budget — both waiters see the failure.
                    outcomes = await asyncio.gather(
                        *(server.submit(r) for r in _requests(problem, 2)),
                        return_exceptions=True,
                    )
                    assert all(
                        isinstance(o, PoolRecoveryExhausted)
                        for o in outcomes
                    ), outcomes
                    with pytest.raises(ServerUnhealthy) as shed:
                        await server.submit(_requests(problem, 1)[0])
                    assert shed.value.retry_after > 0.0
                    return server.stats()

        with inject_faults(parse_fault_specs(CRASH_ALWAYS)):
            stats = asyncio.run(scenario())
        assert stats.pool_failures >= 1
        assert stats.breaker_opened >= 1
        assert stats.shed_unhealthy >= 1
        assert "pool failure" in stats.summary()
