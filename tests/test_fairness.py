"""Tests for constraints, fairness checks, Infeasible Index, and the
weakly-fair-ranking construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProblemError, InvalidConstraintError
from repro.fairness.checks import is_fair, is_weakly_fair, prefix_group_counts
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.fairness.infeasible_index import (
    infeasible_index,
    infeasible_index_breakdown,
    lower_violations,
    percent_fair_positions,
    upper_violations,
)
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking, random_ranking


def alternating_ranking(n: int) -> Ranking:
    """[0, 1, 2, ...] which alternates groups when group = id % 2."""
    return Ranking(np.arange(n))


def segregated_ranking(n: int) -> Ranking:
    """All of group 0 (even ids) first, then group 1."""
    return Ranking(np.concatenate([np.arange(0, n, 2), np.arange(1, n, 2)]))


class TestConstraints:
    def test_proportional(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        assert fc.alpha.tolist() == [0.5, 0.5]
        assert fc.beta.tolist() == [0.5, 0.5]
        assert fc.n_groups == 2

    def test_counts(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        assert fc.lower_counts(3).tolist() == [1, 1]   # floor(1.5)
        assert fc.upper_counts(3).tolist() == [2, 2]   # ceil(1.5)
        assert fc.lower_counts(4).tolist() == [2, 2]
        assert fc.upper_counts(4).tolist() == [2, 2]

    def test_bounds_matrix_matches_scalars(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        lower, upper = fc.count_bounds_matrix(10)
        for ell in range(1, 11):
            assert lower[ell - 1].tolist() == fc.lower_counts(ell).tolist()
            assert upper[ell - 1].tolist() == fc.upper_counts(ell).tolist()

    def test_exact_integer_boundaries(self):
        # floor/ceil at exact multiples must not wobble from float error.
        fc = FairnessConstraints.from_rates([0.2, 0.8], [0.2, 0.8])
        assert fc.lower_counts(5).tolist() == [1, 4]
        assert fc.upper_counts(5).tolist() == [1, 4]
        assert fc.lower_counts(10).tolist() == [2, 8]
        assert fc.upper_counts(10).tolist() == [2, 8]

    def test_validation(self):
        with pytest.raises(InvalidConstraintError):
            FairnessConstraints.from_rates([0.5], [0.6])  # beta > alpha
        with pytest.raises(InvalidConstraintError):
            FairnessConstraints.from_rates([1.5], [0.5])
        with pytest.raises(InvalidConstraintError):
            FairnessConstraints.from_rates([0.5, 0.5], [0.5])
        with pytest.raises(InvalidConstraintError):
            FairnessConstraints.from_rates([], [])
        with pytest.raises(InvalidConstraintError):
            FairnessConstraints.from_rates([0.5], [0.5], k=0)

    def test_with_k(self):
        fc = FairnessConstraints.from_rates([0.5], [0.5], k=1)
        assert fc.with_k(4).k == 4

    def test_immutable_vectors(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        with pytest.raises(ValueError):
            fc.alpha[0] = 0.9


class TestPrefixCounts:
    def test_alternating(self, two_groups_10):
        counts = prefix_group_counts(alternating_ranking(10), two_groups_10)
        assert counts[0].tolist() == [1, 0]
        assert counts[1].tolist() == [1, 1]
        assert counts[9].tolist() == [5, 5]

    def test_rows_sum_to_length(self, two_groups_10, rng):
        r = random_ranking(10, seed=rng)
        counts = prefix_group_counts(r, two_groups_10)
        assert counts.sum(axis=1).tolist() == list(range(1, 11))


class TestChecks:
    def test_alternating_is_fair(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        assert is_fair(alternating_ranking(10), two_groups_10, fc)
        assert is_weakly_fair(alternating_ranking(10), two_groups_10, fc)

    def test_segregated_not_fair(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        assert not is_fair(segregated_ranking(10), two_groups_10, fc)

    def test_weak_checks_only_k_prefix(self, two_groups_10):
        # Segregated ranking: the full-length prefix is balanced, so weak
        # fairness at k=10 holds, while strong fairness from k=2 fails
        # (intermediate prefixes are one-sided).
        seg = segregated_ranking(10)
        fc_weak = FairnessConstraints.proportional(two_groups_10, k=10)
        assert is_weakly_fair(seg, two_groups_10, fc_weak)
        fc_strong = FairnessConstraints.proportional(two_groups_10, k=2)
        assert not is_fair(seg, two_groups_10, fc_strong)
        # With k=10 the strong check also sees only the balanced full
        # prefix, so it passes too — the k threshold governs both notions.
        assert is_fair(seg, two_groups_10, fc_weak)

    def test_k_larger_than_n_vacuous(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10, k=99)
        assert is_fair(segregated_ranking(10), two_groups_10, fc)
        assert is_weakly_fair(segregated_ranking(10), two_groups_10, fc)

    def test_strong_implies_weak(self, two_groups_10, rng):
        fc = FairnessConstraints.proportional(two_groups_10, k=2)
        for _ in range(50):
            r = random_ranking(10, seed=rng)
            if is_fair(r, two_groups_10, fc):
                assert is_weakly_fair(r, two_groups_10, fc)


class TestInfeasibleIndex:
    def test_alternating_zero(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        assert infeasible_index(alternating_ranking(10), two_groups_10, fc) == 0
        assert percent_fair_positions(alternating_ranking(10), two_groups_10, fc) == 100.0

    def test_segregated_max(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        b = infeasible_index_breakdown(segregated_ranking(10), two_groups_10, fc)
        # Positions 2..8 (7 prefixes) violate; prefix 1 is within rounding
        # bands, prefixes 9,10 are balanced enough... verify exact value.
        assert b.two_sided == 14
        assert b.lower == 7 and b.upper == 7

    def test_lower_upper_separation(self, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        seg = segregated_ranking(10)
        assert lower_violations(seg, two_groups_10, fc) == 7
        assert upper_violations(seg, two_groups_10, fc) == 7

    def test_percent_uses_either_not_sum(self, two_groups_10):
        # With two tight groups, violating prefixes violate both sides at
        # once; PPfair must not double count.
        fc = FairnessConstraints.proportional(two_groups_10)
        b = infeasible_index_breakdown(segregated_ranking(10), two_groups_10, fc)
        assert b.either == 7
        assert b.percent_fair == pytest.approx(100 * (1 - 7 / 10))

    def test_breakdown_consistency(self, two_groups_10, rng):
        fc = FairnessConstraints.proportional(two_groups_10)
        for _ in range(30):
            r = random_ranking(10, seed=rng)
            b = infeasible_index_breakdown(r, two_groups_10, fc)
            assert b.two_sided == b.lower + b.upper
            assert max(b.lower, b.upper) <= b.either <= b.two_sided
            assert 0.0 <= b.percent_fair <= 100.0

    def test_three_groups(self, three_groups_9):
        fc = FairnessConstraints.proportional(three_groups_9)
        perfect = Ranking(np.arange(9))
        assert infeasible_index(perfect, three_groups_9, fc) == 0

    def test_empty_percent(self):
        # Degenerate single-item ranking is trivially fair.
        ga = GroupAssignment(["a"])
        fc = FairnessConstraints.proportional(ga)
        assert percent_fair_positions(Ranking([0]), ga, fc) == 100.0


class TestWeaklyFairRanking:
    def test_output_is_fair_and_score_greedy(self, two_groups_10):
        scores = np.linspace(1.0, 0.1, 10)
        fc = FairnessConstraints.proportional(two_groups_10)
        r = weakly_fair_ranking(scores, two_groups_10, fc)
        assert is_fair(r, two_groups_10, fc)
        assert infeasible_index(r, two_groups_10, fc) == 0

    def test_unbalanced_scores_still_fair(self):
        # All of group b has higher scores; construction must interleave.
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        scores = np.concatenate([np.linspace(0.4, 0.1, 5), np.linspace(1.0, 0.6, 5)])
        fc = FairnessConstraints.proportional(ga)
        r = weakly_fair_ranking(scores, ga, fc)
        assert infeasible_index(r, ga, fc) == 0

    def test_respects_score_order_within_groups(self, two_groups_10, rng):
        scores = rng.random(10)
        r = weakly_fair_ranking(scores, two_groups_10)
        pos = r.positions
        for gi in range(2):
            members = np.flatnonzero(two_groups_10.indices == gi)
            members_by_pos = members[np.argsort(pos[members])]
            s = scores[members_by_pos]
            assert np.all(np.diff(s) <= 0)

    def test_default_constraints(self, two_groups_10):
        scores = np.linspace(1.0, 0.1, 10)
        r = weakly_fair_ranking(scores, two_groups_10)
        fc = FairnessConstraints.proportional(two_groups_10)
        assert infeasible_index(r, two_groups_10, fc) == 0

    def test_infeasible_bounds_raise(self):
        ga = GroupAssignment(["a", "b"])
        # Both groups demand the full prefix.
        fc = FairnessConstraints.from_rates([1.0, 1.0], [1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            weakly_fair_ranking(np.array([1.0, 0.5]), ga, fc)

    def test_length_mismatch(self, two_groups_10):
        with pytest.raises(Exception):
            weakly_fair_ranking(np.ones(5), two_groups_10)

    def test_german_like_four_groups(self, rng):
        sizes = [21, 34, 10, 35]
        labels = sum([[f"g{i}"] * s for i, s in enumerate(sizes)], [])
        ga = GroupAssignment(labels)
        scores = rng.random(100)
        fc = FairnessConstraints.proportional(ga)
        r = weakly_fair_ranking(scores, ga, fc)
        assert infeasible_index(r, ga, fc) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=1000))
    def test_property_proportional_always_feasible(self, half, seed):
        # With alpha = beta = proportions, a fair ranking always exists and
        # the greedy must find it.
        n = 2 * half
        ga = GroupAssignment.from_indices(np.array([i % 2 for i in range(n)]))
        scores = np.random.default_rng(seed).random(n)
        fc = FairnessConstraints.proportional(ga)
        r = weakly_fair_ranking(scores, ga, fc)
        assert infeasible_index(r, ga, fc) == 0
