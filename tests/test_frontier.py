"""Tests for the fairness/efficiency trade-off frontier."""

import numpy as np
import pytest

from repro.experiments.frontier import (
    FrontierPoint,
    _mark_pareto,
    compute_tradeoff_frontier,
)
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking


@pytest.fixture
def unfair_setup():
    """Segregated centre: group b outscores group a everywhere."""
    ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
    scores = np.concatenate(
        [np.linspace(0.4, 0.1, 5), np.linspace(1.0, 0.6, 5)]
    )
    center = Ranking(np.argsort(-scores, kind="stable"))
    return center, scores, ga


class TestParetoMask:
    def test_single_point(self):
        assert _mark_pareto(np.array([1.0]), np.array([0.5])).tolist() == [True]

    def test_dominated_point(self):
        unf = np.array([1.0, 2.0])
        ndcg = np.array([0.9, 0.8])
        assert _mark_pareto(unf, ndcg).tolist() == [True, False]

    def test_incomparable_points(self):
        unf = np.array([1.0, 2.0])
        ndcg = np.array([0.8, 0.9])
        assert _mark_pareto(unf, ndcg).tolist() == [True, True]

    def test_duplicates_survive(self):
        unf = np.array([1.0, 1.0])
        ndcg = np.array([0.9, 0.9])
        assert _mark_pareto(unf, ndcg).tolist() == [True, True]


class TestFrontier:
    def test_monotone_trends(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(0.1, 0.5, 2.0), m=300, seed=0
        )
        ndcgs = [p.ndcg for p in frontier.points]
        unfs = [p.unfairness for p in frontier.points]
        assert ndcgs == sorted(ndcgs)       # efficiency grows with theta
        assert unfs == sorted(unfs)         # unfairness grows too (unfair centre)

    def test_all_points_pareto_when_monotone(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(0.1, 0.5, 2.0), m=300, seed=0
        )
        assert all(p.pareto for p in frontier.points)
        assert frontier.pareto_points() == list(frontier.points)

    def test_best_theta_respects_budget(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(0.1, 0.5, 2.0), m=300, seed=0
        )
        mid_budget = frontier.points[1].unfairness
        best = frontier.best_theta(mid_budget)
        assert best == 0.5

    def test_best_theta_none_when_infeasible(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(1.0,), m=200, seed=0
        )
        assert frontier.best_theta(-1.0) is None

    def test_exposure_metric(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(0.1, 2.0), m=200,
            metric="exposure-gap", seed=1,
        )
        # Exposure gap grows with theta around a segregated centre.
        assert frontier.points[0].unfairness < frontier.points[1].unfairness
        assert frontier.metric == "exposure-gap"

    def test_to_text(self, unfair_setup):
        center, scores, ga = unfair_setup
        frontier = compute_tradeoff_frontier(
            center, scores, ga, thetas=(0.5,), m=100, seed=0
        )
        text = frontier.to_text()
        assert "theta" in text and "pareto" in text

    def test_validation(self, unfair_setup):
        center, scores, ga = unfair_setup
        with pytest.raises(ValueError):
            compute_tradeoff_frontier(center, scores, ga, metric="nope")
        with pytest.raises(ValueError):
            compute_tradeoff_frontier(center, scores, ga, m=0)
