"""Shared fixtures and brute-force reference helpers for the test suite."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.fairness.checks import is_fair
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking


@pytest.fixture(autouse=True)
def _reset_fanout_warnings():
    """Wipe the process-wide warn-once + fault-recovery state before every
    test.

    The warn-once advisories in :mod:`repro.batch.parallel` are deduplicated
    in a process-wide registry; without this reset, whichever test fires one
    first would swallow the warning for every later test that legitimately
    expects it.  The same hygiene applies to the process-wide
    :data:`~repro.faults.supervisor.GLOBAL_FAULTS` tally and any configured
    fault-injection plan — a chaos test must never leak crashes into its
    neighbours.
    """
    from repro.batch import reset_warnings
    from repro.faults import clear_plan, reset_fault_counters

    reset_warnings()
    reset_fault_counters()
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def rng():
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_groups_10():
    """Ten items, two equal groups (even ids group 0, odd ids group 1)."""
    return GroupAssignment.from_indices(np.array([i % 2 for i in range(10)]))


@pytest.fixture
def three_groups_9():
    """Nine items in three equal groups, interleaved."""
    return GroupAssignment.from_indices(np.array([i % 3 for i in range(9)]))


def all_perms(n: int):
    """All rankings of n items (test sizes only)."""
    return [Ranking(np.array(p)) for p in itertools.permutations(range(n))]


def fair_perms(n: int, groups: GroupAssignment, constraints: FairnessConstraints):
    """All strongly fair rankings of n items — brute-force feasible set."""
    return [
        r for r in all_perms(n) if is_fair(r, groups, constraints)
    ]


def brute_force_best(perms, key):
    """The permutation maximizing ``key`` (ties broken arbitrarily)."""
    best = None
    best_val = None
    for r in perms:
        v = key(r)
        if best_val is None or v > best_val:
            best, best_val = r, v
    return best, best_val
