"""Tests for :mod:`repro.analysis.callgraph` — pass 1 of the project
analyzer: module indexing, name resolution, graph assembly, SCCs.

The fixtures here are tiny synthetic "projects": dicts of module name →
source, indexed and assembled in-memory (no files needed).
"""

import ast

from repro.analysis.callgraph import (
    DYNAMIC,
    build_call_graph,
    collect_import_aliases,
    dependency_closure,
    dotted_name,
    index_module,
    strongly_connected_components,
)


def build(modules: dict[str, str]):
    """``{module: source}`` → the assembled CallGraph."""
    indexes = [
        index_module(ast.parse(source), module, f"{module}.py")
        for module, source in modules.items()
    ]
    return build_call_graph(indexes)


class TestDottedName:
    def test_name_and_attribute_chains(self):
        assert dotted_name(ast.parse("a", mode="eval").body) == "a"
        assert dotted_name(ast.parse("a.b.c", mode="eval").body) == "a.b.c"

    def test_dynamic_shapes_are_none(self):
        assert dotted_name(ast.parse("a[0].b", mode="eval").body) is None
        assert dotted_name(ast.parse("f().g", mode="eval").body) is None


class TestImportAliases:
    def test_plain_aliased_and_from_imports(self):
        tree = ast.parse(
            "import numpy as np\n"
            "import os.path\n"
            "from time import perf_counter as clock\n"
        )
        aliases = collect_import_aliases(tree)
        assert aliases["np"] == "numpy"
        assert aliases["os"] == "os"  # dotted import binds the head
        assert aliases["clock"] == "time.perf_counter"


class TestModuleIndex:
    def test_functions_methods_and_nesting(self):
        index = index_module(
            ast.parse(
                "def top():\n"
                "    def inner():\n"
                "        pass\n"
                "class C:\n"
                "    def meth(self):\n"
                "        pass\n"
                "    async def ameth(self):\n"
                "        pass\n"
            ),
            "m",
            "m.py",
        )
        fns = index.function_map()
        assert set(fns) == {"m.top", "m.top.inner", "m.C.meth", "m.C.ameth"}
        assert fns["m.top.inner"].nested_in == "m.top"
        assert fns["m.C.meth"].nested_in is None  # a method, not a closure
        assert fns["m.C.ameth"].is_async

    def test_call_attribution_and_await_flag(self):
        index = index_module(
            ast.parse(
                "import asyncio\n"
                "async def h():\n"
                "    await asyncio.sleep(0)\n"
                "    helper()\n"
                "def helper():\n"
                "    pass\n"
            ),
            "m",
            "m.py",
        )
        calls = {c.target: c for c in index.calls}
        assert calls["asyncio.sleep"].awaited
        assert calls["asyncio.sleep"].in_async
        assert not calls["m.helper"].awaited
        assert calls["m.helper"].caller == "m.h"


class TestResolution:
    def test_alias_chain_from_import_as(self):
        graph = build(
            {
                "x": "def f():\n    pass\n",
                "m": "from x import f as g\n\ndef use():\n    g()\n",
            }
        )
        assert [e.callee for e in graph.callees("m.use")] == ["x.f"]
        assert graph.module_deps["m"] == {"x"}

    def test_method_vs_function_disambiguation(self):
        graph = build(
            {
                "m": (
                    "def run():\n"
                    "    pass\n"
                    "class C:\n"
                    "    def run(self):\n"
                    "        pass\n"
                    "    def go(self):\n"
                    "        self.run()\n"
                    "        run()\n"
                )
            }
        )
        callees = [e.callee for e in graph.callees("m.C.go")]
        # self.run() is the method; the bare name skips the class scope
        # (Python lookup rules) and finds the module-level function.
        assert callees == ["m.C.run", "m.run"]

    def test_package_reexport_following(self):
        graph = build(
            {
                "p.impl": "def f():\n    pass\n",
                "p": "from p.impl import f\n",
                "q": "import p\n\ndef use():\n    p.f()\n",
            }
        )
        assert [e.callee for e in graph.callees("q.use")] == ["p.impl.f"]

    def test_class_instantiation_maps_to_init(self):
        graph = build(
            {
                "m": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def make():\n"
                    "    return C()\n"
                )
            }
        )
        assert [e.callee for e in graph.callees("m.make")] == ["m.C.__init__"]

    def test_unresolvable_calls_get_dynamic_edges(self):
        graph = build(
            {
                "m": (
                    "def use(handlers, k):\n"
                    "    handlers[k]()\n"
                    "    (lambda: 1)()\n"
                )
            }
        )
        assert graph.dynamic_calls["m.use"] == 2
        assert graph.callees("m.use") == []

    def test_self_on_unknown_attr_is_dynamic(self):
        graph = build(
            {
                "m": (
                    "class C:\n"
                    "    def go(self):\n"
                    "        self.pool.submit(x)\n"
                )
            }
        )
        assert graph.dynamic_calls.get("m.C.go", 0) == 1

    def test_external_calls_are_kept_not_edges(self):
        graph = build({"m": "import time\n\ndef f():\n    time.time()\n"})
        assert graph.callees("m.f") == []
        assert [c.target for c in graph.external_calls["m.f"]] == [
            "time.time"
        ]

    def test_import_cycles_do_not_loop_the_resolver(self):
        # a re-exports from b, b re-exports from a: resolution of a name
        # that bounces between them must terminate (bounded walk).
        graph = build(
            {
                "a": "from b import f\n",
                "b": "from a import f\n",
                "m": "import a\n\ndef use():\n    a.f()\n",
            }
        )
        assert graph.callees("m.use") == []  # unresolved, not a hang


class TestSCCs:
    def test_mutual_recursion_is_one_component(self):
        graph = build(
            {
                "m": (
                    "def a():\n"
                    "    b()\n"
                    "def b():\n"
                    "    a()\n"
                    "def solo():\n"
                    "    a()\n"
                )
            }
        )
        components = strongly_connected_components(graph)
        assert ("m.a", "m.b") in components

    def test_reverse_topological_order(self):
        graph = build(
            {
                "m": (
                    "def leaf():\n"
                    "    pass\n"
                    "def mid():\n"
                    "    leaf()\n"
                    "def top():\n"
                    "    mid()\n"
                )
            }
        )
        components = strongly_connected_components(graph)
        order = {comp: i for i, comp in enumerate(components)}
        assert order[("m.leaf",)] < order[("m.mid",)] < order[("m.top",)]

    def test_self_recursion_terminates(self):
        graph = build({"m": "def f(n):\n    return f(n - 1)\n"})
        assert ("m.f",) in strongly_connected_components(graph)


class TestDependencyClosure:
    def test_transitive_and_cyclic(self):
        deps = {"a": {"b"}, "b": {"c"}, "c": set(), "d": {"a"}, "x": {"x"}}
        assert dependency_closure("a", deps) == ("a", "b", "c")
        assert dependency_closure("d", deps) == ("a", "b", "c", "d")
        assert dependency_closure("x", deps) == ("x",)

    def test_project_deps_cover_call_edges(self):
        graph = build(
            {
                "x": "def f():\n    pass\n",
                "m": "from x import f\n\ndef use():\n    f()\n",
                "n": "def other():\n    pass\n",
            }
        )
        assert dependency_closure("m", graph.module_deps) == ("m", "x")
        assert dependency_closure("n", graph.module_deps) == ("n",)
