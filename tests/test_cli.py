"""Tests for the command-line interface (against fast paths only)."""

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = _build_parser()
        for cmd in ("fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "fig7", "all"):
            args = parser.parse_args([cmd] if cmd not in () else [cmd])
            assert args.command == cmd

    def test_fig5_options(self):
        args = _build_parser().parse_args(
            ["fig5", "--theta", "1", "--sigma", "0.5", "--repeats", "3", "--milp"]
        )
        assert args.theta == 1.0
        assert args.sigma == 0.5
        assert args.repeats == 3
        assert args.milp is True

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "1000" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig.1" in out
        assert "theta" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out
        assert "delta" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--theta", "0.5", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.5" in out
        assert "Age-Sex" in out

    def test_fig6_noisy_small(self, capsys):
        assert main(["fig6", "--theta", "1", "--sigma", "1", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.6" in out
        assert "Housing" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.7" in out
        assert "NDCG" in out
