"""Tests for the command-line interface (against fast paths only)."""

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = _build_parser()
        for cmd in ("fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "fig7", "all"):
            args = parser.parse_args([cmd] if cmd not in () else [cmd])
            assert args.command == cmd

    def test_fig5_options(self):
        args = _build_parser().parse_args(
            ["fig5", "--theta", "1", "--sigma", "0.5", "--repeats", "3", "--milp"]
        )
        assert args.theta == 1.0
        assert args.sigma == 0.5
        assert args.repeats == 3
        assert args.milp is True

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "1000" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig.1" in out
        assert "theta" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out
        assert "delta" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--theta", "0.5", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.5" in out
        assert "Age-Sex" in out

    def test_fig6_noisy_small(self, capsys):
        assert main(["fig6", "--theta", "1", "--sigma", "1", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.6" in out
        assert "Housing" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig.7" in out
        assert "NDCG" in out


class TestRankCommand:
    """The serving subcommand built on the engine registry."""

    def test_list_algorithms(self, capsys):
        assert main(["rank", "--list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("mallows", "detconstsort", "ipf", "binary-ipf", "dp"):
            assert name in out

    def test_inline_values(self, capsys):
        assert main([
            "rank", "--algorithm", "mallows",
            "--scores", "0.9,0.8,0.7,0.6,0.5,0.4",
            "--groups", "a,a,a,b,b,b",
            "--param", "theta=1.0", "--param", "n_samples=5",
            "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "order:" in out
        assert "NDCG" in out
        assert "Infeasible Index" in out

    def test_csv_files_and_repeat_jobs(self, tmp_path, capsys):
        scores = tmp_path / "scores.csv"
        scores.write_text("0.9\n0.8\n0.7\n0.6\n0.5\n0.4\n")
        groups = tmp_path / "groups.csv"
        groups.write_text("a,a,a,b,b,b\n")
        assert main([
            "rank", "--algorithm", "dp",
            "--scores", str(scores), "--groups", str(groups),
            "--repeat", "3", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("order:") == 3

    def test_repeat_matches_serial(self, capsys):
        args = [
            "rank", "--algorithm", "mallows",
            "--scores", "0.9,0.8,0.7,0.6,0.5,0.4",
            "--param", "theta=0.5",
            "--repeat", "4", "--seed", "3",
        ]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        # as-completed printing may reorder blocks; the per-request lines
        # themselves must agree exactly.
        assert sorted(serial.splitlines()) == sorted(pooled.splitlines())

    def test_attribute_blind_without_groups(self, capsys):
        assert main([
            "rank", "--algorithm", "mallows",
            "--scores", "1.0,0.5,0.2",
            "--param", "theta=2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "Infeasible Index" not in out

    def test_missing_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["rank"])
        with pytest.raises(SystemExit):
            main(["rank", "--algorithm", "mallows"])

    def test_group_requiring_algorithm_without_groups_rejected(self):
        with pytest.raises(SystemExit, match="requires the protected"):
            main(["rank", "--algorithm", "dp", "--scores", "1.0,0.5,0.2"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main([
                "rank", "--algorithm", "nope",
                "--scores", "1.0,0.5", "--groups", "a,b",
            ])

    def test_bad_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["rank", "--algorithm", "mallows", "--scores", "a,b"])
        with pytest.raises(SystemExit):
            main([
                "rank", "--algorithm", "mallows",
                "--scores", "1.0,0.5", "--groups", "a",
            ])
        with pytest.raises(SystemExit):
            main([
                "rank", "--algorithm", "mallows",
                "--scores", "1.0,0.5", "--param", "theta",
            ])


class TestLintCommand:
    """The static-analysis gate: shell-friendly exit codes (0 clean,
    1 findings, 2 usage/parse error) and both report formats."""

    SRC = __file__.replace("test_cli.py", "") + "../src/repro"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", self.SRC]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "core.py"
        # Linted by path: outside any package the file is scope-neutral,
        # so use an everywhere-on rule (REP004).
        bad.write_text(
            "from repro.batch.cache import KernelCache\n"
            "CACHE = KernelCache()\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP004" in out and "1 finding" in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "PATH is required" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", self.SRC, "--select", "REP999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_format_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", self.SRC, "--format", "yaml"])
        assert excinfo.value.code == 2

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        import json as _json

        bad = tmp_path / "core.py"
        bad.write_text(
            "from repro.batch.cache import KernelCache\n"
            "CACHE = KernelCache()\n"
        )
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = _json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "REP004"
        assert payload["findings"][0]["line"] == 2

    def test_select_narrows_the_gate(self, tmp_path, capsys):
        bad = tmp_path / "core.py"
        bad.write_text(
            "from repro.batch.cache import KernelCache\n"
            "CACHE = KernelCache()\n"
        )
        assert main(["lint", str(bad), "--select", "REP001"]) == 0
        capsys.readouterr()

    def test_suppressed_findings_exit_zero(self, tmp_path, capsys):
        ok = tmp_path / "core.py"
        ok.write_text(
            "from repro.batch.cache import KernelCache\n"
            "CACHE = KernelCache()  # repro: noqa[REP004] test fixture\n"
        )
        assert main(["lint", str(ok)]) == 0
        out = capsys.readouterr().out
        assert "(1 suppressed" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP004", "REP007"):
            assert rule_id in out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        binary = tmp_path / "not_text.py"
        binary.write_bytes(b"\xff\xfe\x00junk")
        assert main(["lint", str(binary), "--no-cache"]) == 2
        out = capsys.readouterr().out
        # One reported error line, no traceback.
        assert str(binary) in out
        assert "1 error" in out

    def test_no_cache_skips_the_cache_file(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "ok.py", "--no-cache"]) == 0
        assert not (tmp_path / ".repro-lint-cache.json").exists()
        # The default-on cache writes to the default location.
        assert main(["lint", "ok.py"]) == 0
        assert (tmp_path / ".repro-lint-cache.json").exists()
        capsys.readouterr()

    def test_warm_cache_output_identical_with_stats(self, tmp_path, capsys):
        bad = tmp_path / "core.py"
        bad.write_text(
            "from repro.batch.cache import KernelCache\n"
            "CACHE = KernelCache()\n"
        )
        cache_file = tmp_path / "cache.json"
        stats_file = tmp_path / "stats.json"
        base = [
            "lint", str(bad), "--format", "json",
            "--cache-file", str(cache_file),
            "--cache-stats", str(stats_file),
        ]
        assert main(base) == 1
        cold = capsys.readouterr().out
        import json as _json

        assert _json.loads(stats_file.read_text())["summary_misses"] == 1
        assert main(base) == 1
        warm = capsys.readouterr().out
        assert warm == cold
        stats = _json.loads(stats_file.read_text())
        assert stats["summary_hits"] == 1
        assert stats["summary_misses"] == 0

    def _transitive_tree(self, tmp_path):
        """A package whose REP009 finding is at ``core.py:9``."""
        serve = tmp_path / "repro" / "serve"
        serve.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (serve / "__init__.py").write_text("")
        core = serve / "core.py"
        core.write_text(
            "import time\n"
            "\n"
            "\n"
            "def read_clock():\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "def tick():\n"
            "    return read_clock()\n"
        )
        return str(tmp_path / "repro"), str(core)

    def test_explain_prints_witness_chain(self, tmp_path, capsys):
        tree, core = self._transitive_tree(tmp_path)
        spec = f"REP009:{core}:9"
        assert main(["lint", tree, "--no-cache", "--explain", spec]) == 0
        out = capsys.readouterr().out
        assert f"{core}:9:" in out
        assert "witness chain:" in out
        assert "time.time" in out

    def test_explain_direct_finding_has_no_chain(self, tmp_path, capsys):
        tree, core = self._transitive_tree(tmp_path)
        spec = f"REP002:{core}:5"
        assert main(["lint", tree, "--no-cache", "--explain", spec]) == 0
        out = capsys.readouterr().out
        assert "no witness chain" in out

    def test_explain_no_match_exits_two(self, tmp_path, capsys):
        tree, core = self._transitive_tree(tmp_path)
        spec = f"REP009:{core}:999"
        assert main(["lint", tree, "--no-cache", "--explain", spec]) == 2
        assert "no REP009 finding" in capsys.readouterr().err

    def test_explain_malformed_spec_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        target = str(tmp_path / "ok.py")
        assert main(["lint", target, "--explain", "REP009"]) == 2
        assert "--explain wants" in capsys.readouterr().err
        assert main(["lint", target, "--explain", "REP009:x:abc"]) == 2
        assert "must be an integer" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = _build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.requests == 64
        assert args.window == 0.002
        assert args.max_batch == 16
        assert args.verify_digest is False

    def test_serve_verifies_digest(self, capsys):
        assert main(
            ["serve", "--requests", "12", "--verify-digest", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "12/12 served" in out
        assert "digest ok" in out
        assert "coalescing" in out

    def test_serve_warm_start(self, tmp_path, capsys):
        import json as _json

        bench = tmp_path / "BENCH_X.json"
        bench.write_text(_json.dumps({
            "reports": [{"name": "b", "metrics": {"cost_table": {
                "rank:dp:24": {"ewma_seconds": 0.01, "observations": 2},
            }}}],
        }))
        assert main(
            ["serve", "--requests", "8", "--warm-start", str(bench)]
        ) == 0
        err = capsys.readouterr().err
        assert "warm-started 1 cost kinds" in err

    def test_serve_rejects_bad_knobs(self):
        with pytest.raises(SystemExit):
            main(["serve", "--requests", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--window", "-1"])

    def test_bench_client_compare_coalescing(self, capsys):
        assert main([
            "bench-client", "--requests", "12", "--compare-coalescing",
        ]) == 0
        out = capsys.readouterr().out
        assert "[no-coalescing]" in out
        assert "coalescing speedup" in out
        assert "p50" in out

    def test_bench_client_paced_with_retries(self, capsys):
        assert main([
            "bench-client", "--requests", "8", "--rate", "500",
            "--retries", "3", "--budget", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "served" in out
