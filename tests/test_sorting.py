"""Tests for score-based ranking construction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rankings.sorting import is_sorted_by_score, rank_by_score, scores_in_rank_order


class TestRankByScore:
    def test_descending(self):
        r = rank_by_score([0.1, 0.9, 0.5])
        assert r.order.tolist() == [1, 2, 0]

    def test_stable_ties_by_index(self):
        r = rank_by_score([1.0, 1.0, 1.0])
        assert r.order.tolist() == [0, 1, 2]

    def test_seeded_tie_break_deterministic(self):
        a = rank_by_score([1.0] * 6, seed=5)
        b = rank_by_score([1.0] * 6, seed=5)
        assert a == b

    def test_seeded_tie_break_randomizes(self):
        outcomes = {tuple(rank_by_score([1.0] * 6, seed=s).order) for s in range(20)}
        assert len(outcomes) > 1

    def test_seeded_still_sorted(self):
        scores = [0.3, 0.3, 0.9, 0.1]
        r = rank_by_score(scores, seed=1)
        assert is_sorted_by_score(r, scores)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rank_by_score(np.zeros((2, 2)))

    @given(st.lists(st.floats(allow_nan=False, min_value=-1e6, max_value=1e6), min_size=1, max_size=30))
    def test_property_always_sorted(self, scores):
        assert is_sorted_by_score(rank_by_score(scores), scores)


class TestScoresInRankOrder:
    def test_values(self):
        r = rank_by_score([0.1, 0.9, 0.5])
        assert scores_in_rank_order(r, [0.1, 0.9, 0.5]).tolist() == [0.9, 0.5, 0.1]

    def test_length_mismatch(self):
        r = rank_by_score([0.1, 0.9])
        with pytest.raises(ValueError):
            scores_in_rank_order(r, [0.1, 0.9, 0.5])
