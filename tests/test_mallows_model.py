"""Tests for the Mallows model: partition function, pmf, moments."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mallows.model import (
    MallowsModel,
    expected_kendall_tau,
    log_partition_function,
    partition_function,
    variance_kendall_tau,
)
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, all_rankings, identity

thetas = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)


class TestPartitionFunction:
    def test_theta_zero_is_factorial(self):
        for n in range(6):
            assert partition_function(n, 0.0) == pytest.approx(math.factorial(n))

    def test_matches_brute_force(self):
        for n in (2, 3, 4, 5):
            for theta in (0.1, 0.5, 1.0, 3.0):
                center = identity(n)
                brute = sum(
                    math.exp(-theta * kendall_tau_distance(r, center))
                    for r in all_rankings(n)
                )
                assert partition_function(n, theta) == pytest.approx(brute)

    def test_trivial_sizes(self):
        assert log_partition_function(0, 1.0) == 0.0
        assert log_partition_function(1, 1.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            log_partition_function(-1, 1.0)
        with pytest.raises(ValueError):
            log_partition_function(3, -0.5)

    def test_large_n_stable(self):
        v = log_partition_function(500, 0.01)
        assert np.isfinite(v)

    @given(st.integers(min_value=2, max_value=30), thetas)
    def test_property_decreasing_in_theta(self, n, theta):
        assert log_partition_function(n, theta) >= log_partition_function(
            n, theta + 0.5
        )


class TestExpectedDistance:
    def test_theta_zero_uniform_mean(self):
        assert expected_kendall_tau(10, 0.0) == pytest.approx(10 * 9 / 4)

    def test_matches_brute_force(self):
        for n in (2, 3, 4, 5):
            for theta in (0.2, 1.0, 2.5):
                center = identity(n)
                z = partition_function(n, theta)
                brute = sum(
                    kendall_tau_distance(r, center)
                    * math.exp(-theta * kendall_tau_distance(r, center))
                    for r in all_rankings(n)
                ) / z
                assert expected_kendall_tau(n, theta) == pytest.approx(brute)

    def test_monotone_decreasing_in_theta(self):
        values = [expected_kendall_tau(12, t) for t in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_trivial_sizes(self):
        assert expected_kendall_tau(0, 1.0) == 0.0
        assert expected_kendall_tau(1, 1.0) == 0.0

    def test_variance_matches_brute_force(self):
        for n in (3, 4):
            for theta in (0.0, 0.7, 2.0):
                center = identity(n)
                z = partition_function(n, theta)
                mean = expected_kendall_tau(n, theta)
                brute_var = sum(
                    (kendall_tau_distance(r, center) - mean) ** 2
                    * math.exp(-theta * kendall_tau_distance(r, center))
                    for r in all_rankings(n)
                ) / z
                assert variance_kendall_tau(n, theta) == pytest.approx(brute_var)


class TestMallowsModel:
    def test_pmf_sums_to_one(self):
        for theta in (0.0, 0.5, 2.0):
            model = MallowsModel(center=Ranking([2, 0, 3, 1]), theta=theta)
            total = sum(model.pmf(r) for r in all_rankings(4))
            assert total == pytest.approx(1.0)

    def test_center_is_mode(self):
        model = MallowsModel(center=Ranking([2, 0, 1]), theta=1.0)
        p_center = model.pmf(model.center)
        for r in all_rankings(3):
            assert model.pmf(r) <= p_center + 1e-12

    def test_pmf_depends_only_on_distance(self):
        model = MallowsModel(center=Ranking([0, 1, 2, 3]), theta=0.7)
        for r in all_rankings(4):
            d = kendall_tau_distance(r, model.center)
            expected = math.exp(
                -0.7 * d - log_partition_function(4, 0.7)
            )
            assert model.pmf(r) == pytest.approx(expected)

    def test_uniform_at_theta_zero(self):
        model = MallowsModel(center=Ranking([1, 0, 2]), theta=0.0)
        probs = {model.pmf(r) for r in all_rankings(3)}
        assert all(p == pytest.approx(1 / 6) for p in probs)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            MallowsModel(center=identity(3), theta=-1.0)

    def test_sample_wraps_sampler(self):
        model = MallowsModel(center=identity(5), theta=2.0)
        samples = model.sample(4, seed=0)
        assert len(samples) == 4
        assert all(len(r) == 5 for r in samples)

    def test_log_likelihood_additive(self):
        model = MallowsModel(center=identity(4), theta=1.0)
        rs = [Ranking([1, 0, 2, 3]), Ranking([0, 1, 3, 2])]
        assert model.log_likelihood(rs) == pytest.approx(
            model.log_pmf(rs[0]) + model.log_pmf(rs[1])
        )

    def test_moments_exposed(self):
        model = MallowsModel(center=identity(6), theta=1.0)
        assert model.expected_distance() == pytest.approx(expected_kendall_tau(6, 1.0))
        assert model.distance_std() == pytest.approx(
            math.sqrt(variance_kendall_tau(6, 1.0))
        )
        assert model.max_distance() == 15
