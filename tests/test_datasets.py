"""Tests for the German Credit replica and synthetic workloads."""

import numpy as np
import pytest

from repro.datasets.german_credit import (
    GERMAN_CREDIT_TABLE1,
    load_german_credit,
    synthesize_german_credit,
)
from repro.datasets.synthetic import (
    engineered_ranking_with_ii,
    multi_group_scores,
    two_group_shifted_scores,
)
from repro.exceptions import DatasetError
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index


class TestGermanCredit:
    def test_total_is_1000(self):
        data = synthesize_german_credit(seed=0)
        assert data.n_items == 1000

    def test_joint_counts_match_table1_exactly(self):
        data = synthesize_german_credit(seed=0)
        assert data.joint_counts() == GERMAN_CREDIT_TABLE1

    def test_group_structures(self):
        data = synthesize_german_credit(seed=0)
        assert data.age_sex.n_groups == 4
        assert data.housing.n_groups == 3
        assert data.age_sex.group_sizes.sum() == 1000

    def test_marginals(self):
        data = synthesize_german_credit(seed=0)
        housing_sizes = dict(zip(data.housing.labels, data.housing.group_sizes))
        assert housing_sizes == {"free": 108, "own": 713, "rent": 179}
        age_sex_sizes = dict(zip(data.age_sex.labels, data.age_sex.group_sizes))
        assert age_sex_sizes["<35-female"] == 213
        assert age_sex_sizes[">=35-male"] == 355

    def test_credit_amount_plausible(self):
        data = synthesize_german_credit(seed=0)
        amounts = data.credit_amount
        assert amounts.min() >= 250
        assert amounts.max() <= 20000
        # Heavy right tail: mean well above median, like the real data.
        assert amounts.mean() > np.median(amounts)

    def test_reproducible(self):
        a = synthesize_german_credit(seed=5)
        b = synthesize_german_credit(seed=5)
        assert np.array_equal(a.credit_amount, b.credit_amount)

    def test_identity_shuffled(self):
        # Group labels must not be blocked by item index.
        data = synthesize_german_credit(seed=0)
        first_block = data.age_sex.indices[:213]
        assert len(set(first_block.tolist())) > 1

    def test_subsample(self):
        data = synthesize_german_credit(seed=0)
        sub = data.subsample(50, seed=1)
        assert sub.n_items == 50
        assert sub.age_sex.n_items == 50
        # Group space preserved even if a group is missing.
        assert sub.age_sex.n_groups == 4

    def test_subsample_bad_size(self):
        data = synthesize_german_credit(seed=0)
        with pytest.raises(ValueError):
            data.subsample(0)
        with pytest.raises(ValueError):
            data.subsample(1001)

    def test_load_falls_back_to_synthetic(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("GERMAN_CREDIT_PATH", raising=False)
        data = load_german_credit()
        assert data.source == "synthetic"

    def test_load_missing_explicit_path(self):
        with pytest.raises(DatasetError):
            load_german_credit(path="/nonexistent/german.data")

    def test_load_parses_uci_format(self, tmp_path):
        # Two fabricated UCI-format rows.
        row1 = "A11 6 A34 A43 1169 A65 A75 4 A93 A101 4 A121 67 A143 A152 2 A173 1 A192 A201 1"
        row2 = "A12 48 A32 A43 5951 A61 A73 2 A92 A101 2 A121 22 A143 A151 1 A173 1 A191 A201 2"
        path = tmp_path / "german.data"
        path.write_text(row1 + "\n" + row2 + "\n")
        data = load_german_credit(path=str(path))
        assert data.source == "uci"
        assert data.n_items == 2
        assert data.credit_amount.tolist() == [1169.0, 5951.0]
        assert data.age_sex.group_of(0) == ">=35-male"
        assert data.age_sex.group_of(1) == "<35-female"
        assert data.housing.group_of(0) == "own"
        assert data.housing.group_of(1) == "rent"

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "german.data"
        path.write_text("too few fields\n")
        with pytest.raises(DatasetError):
            load_german_credit(path=str(path))


class TestTwoGroupShifted:
    def test_structure(self):
        sample = two_group_shifted_scores(0.5, seed=0)
        assert sample.scores.shape == (10,)
        assert sample.groups.n_groups == 2
        assert sample.delta == 0.5

    def test_score_ranges(self):
        sample = two_group_shifted_scores(0.7, seed=1)
        s1 = sample.scores[:5]
        s2 = sample.scores[5:]
        assert np.all((0 <= s1) & (s1 <= 1))
        assert np.all((0.7 <= s2) & (s2 <= 1.7))

    def test_ranking_is_score_sorted(self):
        sample = two_group_shifted_scores(0.3, seed=2)
        in_order = sample.scores[sample.ranking.order]
        assert np.all(np.diff(in_order) <= 0)

    def test_delta_one_fully_segregates(self):
        sample = two_group_shifted_scores(1.0, seed=3)
        top5 = sample.groups.indices[sample.ranking.order[:5]]
        assert np.all(top5 == 1)

    def test_custom_group_size(self):
        sample = two_group_shifted_scores(0.0, group_size=8, seed=0)
        assert sample.scores.shape == (16,)

    def test_bad_group_size(self):
        with pytest.raises(DatasetError):
            two_group_shifted_scores(0.0, group_size=0)


class TestMultiGroup:
    def test_structure(self):
        scores, ga = multi_group_scores([3, 4, 5], [0.0, 0.2, 0.4], seed=0)
        assert scores.shape == (12,)
        assert ga.group_sizes.tolist() == [3, 4, 5]

    def test_mismatched_args(self):
        with pytest.raises(DatasetError):
            multi_group_scores([3, 4], [0.0])

    def test_empty_group(self):
        with pytest.raises(DatasetError):
            multi_group_scores([3, 0], [0.0, 0.1])


class TestEngineeredII:
    @pytest.mark.parametrize("target", [0, 2, 4, 6, 8, 10, 12, 14])
    def test_exact_targets_n10(self, target):
        ranking, ga = engineered_ranking_with_ii(target)
        fc = FairnessConstraints.proportional(ga)
        assert infeasible_index(ranking, ga, fc) == target

    def test_unreachable_target_clamps_to_max(self):
        ranking, ga = engineered_ranking_with_ii(99)
        fc = FairnessConstraints.proportional(ga)
        assert infeasible_index(ranking, ga, fc) == 14

    def test_other_sizes(self):
        ranking, ga = engineered_ranking_with_ii(0, n=6)
        fc = FairnessConstraints.proportional(ga)
        assert infeasible_index(ranking, ga, fc) == 0

    def test_invalid_args(self):
        with pytest.raises(DatasetError):
            engineered_ranking_with_ii(0, n=7)
        with pytest.raises(DatasetError):
            engineered_ranking_with_ii(-1)
        with pytest.raises(DatasetError):
            engineered_ranking_with_ii(0, n=20)

    def test_deterministic(self):
        a, _ = engineered_ranking_with_ii(6)
        b, _ = engineered_ranking_with_ii(6)
        assert a == b
