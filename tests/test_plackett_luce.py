"""Tests for the Plackett–Luce model: pmf, sampling law, MM-algorithm MLE."""

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.mallows.plackett_luce import PlackettLuceModel, fit_plackett_luce
from repro.rankings.permutation import Ranking, all_rankings, identity, random_ranking


class TestModelBasics:
    def test_normalizes_worths(self):
        model = PlackettLuceModel(worths=np.array([2.0, 6.0]))
        assert model.worths.tolist() == [0.25, 0.75]

    def test_validation(self):
        with pytest.raises(ValueError):
            PlackettLuceModel(worths=np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            PlackettLuceModel(worths=np.array([]))
        with pytest.raises(ValueError):
            PlackettLuceModel(worths=np.array([[1.0]]))
        with pytest.raises(ValueError):
            PlackettLuceModel(worths=np.array([1.0, np.inf]))

    def test_pmf_sums_to_one(self):
        model = PlackettLuceModel(worths=np.array([0.5, 0.2, 0.2, 0.1]))
        total = sum(model.pmf(r) for r in all_rankings(4))
        assert total == pytest.approx(1.0)

    def test_pmf_hand_computed_n2(self):
        model = PlackettLuceModel(worths=np.array([0.8, 0.2]))
        assert model.pmf(Ranking([0, 1])) == pytest.approx(0.8)
        assert model.pmf(Ranking([1, 0])) == pytest.approx(0.2)

    def test_uniform_worths_uniform_law(self):
        model = PlackettLuceModel(worths=np.ones(3))
        for r in all_rankings(3):
            assert model.pmf(r) == pytest.approx(1 / 6)

    def test_log_pmf_rejects_wrong_length(self):
        model = PlackettLuceModel(worths=np.ones(3))
        with pytest.raises(ValueError):
            model.log_pmf(identity(4))

    def test_log_likelihood_additive(self):
        model = PlackettLuceModel(worths=np.array([0.5, 0.3, 0.2]))
        rs = [Ranking([0, 1, 2]), Ranking([2, 1, 0])]
        assert model.log_likelihood(rs) == pytest.approx(
            model.log_pmf(rs[0]) + model.log_pmf(rs[1])
        )

    def test_from_center_strength_limits(self):
        center = random_ranking(6, seed=0)
        tight = PlackettLuceModel.from_center(center, 0.01)
        # Most likely ranking is the centre itself.
        assert np.argmax(tight.worths) == center.item_at(0)
        uniform = PlackettLuceModel.from_center(center, 1.0)
        assert np.allclose(uniform.worths, 1 / 6)

    def test_from_center_invalid_strength(self):
        with pytest.raises(ValueError):
            PlackettLuceModel.from_center(identity(3), 0.0)

    def test_top_choice_probabilities(self):
        model = PlackettLuceModel(worths=np.array([3.0, 1.0]))
        assert model.top_choice_probabilities().tolist() == [0.75, 0.25]


class TestSamplingLaw:
    def test_valid_permutations(self):
        model = PlackettLuceModel(worths=np.array([0.5, 0.3, 0.2]))
        orders = model.sample_orders(100, seed=0)
        for row in orders:
            assert sorted(row.tolist()) == [0, 1, 2]

    def test_empirical_matches_pmf(self):
        model = PlackettLuceModel(worths=np.array([0.5, 0.3, 0.2]))
        m = 30000
        orders = model.sample_orders(m, seed=1)
        counts = Counter(tuple(row) for row in orders)
        chi2 = 0.0
        for r in all_rankings(3):
            expected = model.pmf(r) * m
            observed = counts.get(tuple(r.order.tolist()), 0)
            chi2 += (observed - expected) ** 2 / expected
        assert chi2 < 21.0  # 5 dof, P(chi2 > 21) < 1e-3

    def test_top_choice_frequency(self):
        model = PlackettLuceModel(worths=np.array([0.7, 0.2, 0.1]))
        orders = model.sample_orders(20000, seed=2)
        first = np.bincount(orders[:, 0], minlength=3) / 20000
        assert np.allclose(first, model.worths, atol=0.015)

    def test_reproducible(self):
        model = PlackettLuceModel(worths=np.ones(5))
        assert np.array_equal(
            model.sample_orders(4, seed=7), model.sample_orders(4, seed=7)
        )

    def test_zero_and_negative(self):
        model = PlackettLuceModel(worths=np.ones(4))
        assert model.sample_orders(0).shape == (0, 4)
        with pytest.raises(ValueError):
            model.sample_orders(-1)


class TestMle:
    def test_recovers_worths(self):
        true = PlackettLuceModel(worths=np.array([0.5, 0.25, 0.15, 0.1]))
        samples = true.sample(8000, seed=3)
        fitted = fit_plackett_luce(samples)
        assert np.allclose(fitted.worths, true.worths, atol=0.03)

    def test_likelihood_not_worse_than_truth(self):
        true = PlackettLuceModel(worths=np.array([0.4, 0.3, 0.2, 0.1]))
        samples = true.sample(500, seed=4)
        fitted = fit_plackett_luce(samples)
        assert fitted.log_likelihood(samples) >= true.log_likelihood(samples) - 1e-6

    def test_uniform_data_uniform_fit(self):
        rankings = [Ranking(p.order) for p in all_rankings(3)]
        fitted = fit_plackett_luce(rankings * 5)
        assert np.allclose(fitted.worths, 1 / 3, atol=1e-3)

    def test_empty_raises(self):
        with pytest.raises(EstimationError):
            fit_plackett_luce([])

    def test_mixed_lengths_raise(self):
        with pytest.raises(EstimationError):
            fit_plackett_luce([identity(3), identity(4)])

    def test_single_item(self):
        fitted = fit_plackett_luce([identity(1)])
        assert fitted.worths.tolist() == [1.0]

    def test_fit_from_center_noise_roundtrip(self):
        # Samples from a centred PL noise model: the fitted worth order
        # recovers the centre's order.
        center = random_ranking(6, seed=5)
        model = PlackettLuceModel.from_center(center, 0.4)
        samples = model.sample(3000, seed=6)
        fitted = fit_plackett_luce(samples)
        recovered = Ranking(np.argsort(-fitted.worths, kind="stable"))
        assert recovered == center
