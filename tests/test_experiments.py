"""Smoke + shape tests of the experiment harness (fast configurations)."""

import numpy as np
import pytest

from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import run_fig1
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.fig34_tradeoff import run_fig34
from repro.experiments.german_credit_exp import (
    ALGORITHMS,
    run_german_credit,
    run_table1,
)

FAST_FIG1 = Fig1Config(target_iis=(0, 8, 14), thetas=(0.25, 1.0, 4.0), n_samples=60, n_bootstrap=100, seed=7)
FAST_FIG2 = Fig2Config(deltas=(0.0, 0.5, 1.0), n_trials=40, n_bootstrap=100, seed=7)
FAST_FIG34 = Fig34Config(
    deltas=(0.0, 1.0), thetas=(0.25, 1.0, 4.0), n_trials=15,
    samples_per_trial=10, n_bootstrap=100, seed=7,
)
FAST_GC = GermanCreditConfig(
    theta=0.5, noise_sigma=0.0, sizes=(10, 30), n_repeats=4, n_bootstrap=100, seed=7
)


class TestFig1:
    def test_runs_and_reports(self):
        result = run_fig1(FAST_FIG1)
        text = result.to_text()
        assert "Fig.1" in text
        assert len(result.central_iis) == 3

    def test_sample_ii_converges_to_central(self):
        result = run_fig1(FAST_FIG1)
        for central_ii, per_theta in result.mean_sample_ii.items():
            largest_theta = max(per_theta)
            assert per_theta[largest_theta].estimate == pytest.approx(
                central_ii, abs=2.5
            )

    def test_unfair_center_repaired_at_low_theta(self):
        result = run_fig1(FAST_FIG1)
        per_theta = result.mean_sample_ii[14]
        smallest_theta = min(per_theta)
        # Large drop from the central II of 14.
        assert per_theta[smallest_theta].estimate < 9.0

    def test_reproducible(self):
        a = run_fig1(FAST_FIG1)
        b = run_fig1(FAST_FIG1)
        for ii in a.mean_sample_ii:
            for theta in a.mean_sample_ii[ii]:
                assert (
                    a.mean_sample_ii[ii][theta].estimate
                    == b.mean_sample_ii[ii][theta].estimate
                )


class TestFig2:
    def test_monotone_trend(self):
        result = run_fig2(FAST_FIG2)
        estimates = [r.estimate for r in result.central_ii.values()]
        # Segregation grows with delta.
        assert estimates[0] < estimates[-1]

    def test_delta_one_saturates(self):
        result = run_fig2(FAST_FIG2)
        assert result.central_ii[1.0].estimate == pytest.approx(14.0, abs=0.5)

    def test_report_contains_deltas(self):
        text = run_fig2(FAST_FIG2).to_text()
        assert "delta" in text
        assert "0.5" in text


class TestFig34:
    def test_ndcg_converges_to_one(self):
        result = run_fig34(FAST_FIG34)
        for delta in FAST_FIG34.deltas:
            per_theta = result.sample_ndcg[delta]
            assert per_theta[4.0].estimate > 0.99

    def test_ndcg_monotone_in_theta(self):
        result = run_fig34(FAST_FIG34)
        for delta in FAST_FIG34.deltas:
            estimates = [result.sample_ndcg[delta][t].estimate for t in FAST_FIG34.thetas]
            assert estimates == sorted(estimates)

    def test_sample_ii_approaches_central_at_high_theta(self):
        result = run_fig34(FAST_FIG34)
        for delta in FAST_FIG34.deltas:
            high = result.sample_ii[delta][4.0].estimate
            assert high == pytest.approx(result.central_ii[delta], abs=2.0)

    def test_tradeoff_for_unfair_center(self):
        # At delta=1 the centre is maximally unfair: lowering theta lowers II.
        result = run_fig34(FAST_FIG34)
        ii = [result.sample_ii[1.0][t].estimate for t in FAST_FIG34.thetas]
        assert ii[0] < ii[-1]

    def test_both_reports_render(self):
        result = run_fig34(FAST_FIG34)
        assert "Fig.3" in result.to_text_fig3()
        assert "Fig.4" in result.to_text_fig4()


class TestTable1:
    def test_exact_counts_rendered(self):
        text = run_table1(synthesize_german_credit(seed=0))
        assert "131" in text and "261" in text and "256" in text
        assert "1000" in text

    def test_totals_row(self):
        text = run_table1(synthesize_german_credit(seed=0))
        total_line = [l for l in text.splitlines() if l.startswith("Total")][0]
        assert "108" in total_line and "713" in total_line and "179" in total_line


class TestGermanCredit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_german_credit(FAST_GC, data=synthesize_german_credit(seed=0))

    def test_all_algorithms_present(self, result):
        for alg in ALGORITHMS:
            assert set(result.ppfair_known[alg]) == set(FAST_GC.sizes)
            assert set(result.ndcg[alg]) == set(FAST_GC.sizes)

    def test_attribute_aware_dominate_known_attribute(self, result):
        # ILP and IPF enforce the Age-Sex constraints: near-perfect PPfair.
        for alg in ("ApproxMultiValuedIPF", "ILP"):
            for size in FAST_GC.sizes:
                assert result.ppfair_known[alg][size].estimate >= 95.0

    def test_ndcg_values_sane(self, result):
        for alg in ALGORITHMS:
            for size in FAST_GC.sizes:
                v = result.ndcg[alg][size].estimate
                assert 0.5 <= v <= 1.0 + 1e-9

    def test_best_of_m_beats_single_sample_ndcg(self, result):
        wins = sum(
            result.ndcg["Mallows (best of m)"][size].estimate
            >= result.ndcg["Mallows (1 sample)"][size].estimate
            for size in FAST_GC.sizes
        )
        assert wins == len(FAST_GC.sizes)

    def test_reports_render(self, result):
        assert "Fig.5" in result.to_text_fig5()
        assert "Fig.6" in result.to_text_fig6()
        assert "Fig.7" in result.to_text_fig7()
        assert "Age-Sex" in result.to_text_fig5()
        assert "Housing" in result.to_text_fig6()

    def test_noisy_panel_runs(self):
        cfg = GermanCreditConfig(
            theta=1.0, noise_sigma=1.0, sizes=(10, 20), n_repeats=3,
            n_bootstrap=50, seed=3,
        )
        result = run_german_credit(cfg, data=synthesize_german_credit(seed=0))
        assert "sigma=1" in result.to_text_fig5()

    def test_milp_engine_panel(self):
        cfg = GermanCreditConfig(
            theta=0.5, noise_sigma=0.0, sizes=(10,), n_repeats=2,
            n_bootstrap=50, use_milp=True, seed=3,
        )
        result = run_german_credit(cfg, data=synthesize_german_credit(seed=0))
        assert result.ppfair_known["ILP"][10].estimate >= 90.0
