"""Bit-for-bit equivalence of the sub-quadratic Fenwick RIM decode.

The contract (see the module docstring of :mod:`repro.mallows.sampling`):
the Fenwick order-statistic decode and the chunked position-accumulator
decode replay the same insertion process exactly, so for *any* displacement
matrix they produce identical ``int64`` orders — the dispatch threshold can
only ever change speed.  These tests pin that across random ``(m, n,
theta)`` shapes, the crossover boundary itself, and the dispatcher knobs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mallows import sampling
from repro.mallows.sampling import (
    DEFAULT_DECODE_CROSSOVER,
    FENWICK_MIN_ROWS,
    _displacement_draws,
    _orders_from_displacements,
    _use_fenwick_decode,
    calibrate_decode_crossover,
    decode_crossover,
    sample_mallows_batch,
    set_decode_crossover,
)
from repro.rankings.permutation import random_ranking


def _legacy_insertion_decode(center_order: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Reference decode: replay the insertions with Python list surgery
    (twin of the reference in ``tests/test_batch_equivalence.py``)."""
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    center_list = center_order.tolist()
    for s in range(m):
        current: list[int] = []
        row = v[s]
        for j in range(n):
            current.insert(j - int(row[j]), center_list[j])
        out[s] = current
    return out


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=120),
    m=st.integers(min_value=1, max_value=80),
    theta=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fenwick_matches_chunked_on_random_shapes(n, m, theta, seed):
    rng = np.random.default_rng(seed)
    v = _displacement_draws(n, theta, m, rng)
    center = np.random.default_rng(seed + 1).permutation(n)
    chunked = _orders_from_displacements(center, v, method="chunked")
    fenwick = _orders_from_displacements(center, v, method="fenwick")
    assert np.array_equal(chunked, fenwick)


@pytest.mark.parametrize("theta", (0.0, 0.5, 2.0))
@pytest.mark.parametrize("n", (1, 2, 3, 17, 64))
def test_fenwick_matches_legacy_insertion_loop(theta, n):
    rng = np.random.default_rng(100 * n + int(theta * 10))
    v = _displacement_draws(n, theta, 50, rng)
    center = random_ranking(n, seed=n).order
    expected = _legacy_insertion_decode(center, v)
    assert np.array_equal(
        _orders_from_displacements(center, v, method="fenwick"), expected
    )


@pytest.mark.parametrize(
    "n",
    (
        DEFAULT_DECODE_CROSSOVER - 1,
        DEFAULT_DECODE_CROSSOVER,
        DEFAULT_DECODE_CROSSOVER + 1,
    ),
)
def test_decodes_agree_at_crossover_boundary(n):
    """Either side of the dispatch threshold, both decodes agree exactly —
    so the threshold itself can never change results."""
    rng = np.random.default_rng(n)
    v = _displacement_draws(n, 0.8, 12, rng)
    center = np.random.default_rng(n + 1).permutation(n)
    chunked = _orders_from_displacements(center, v, method="chunked")
    fenwick = _orders_from_displacements(center, v, method="fenwick")
    auto = _orders_from_displacements(center, v)
    assert np.array_equal(chunked, fenwick)
    assert np.array_equal(auto, chunked)


def test_fenwick_across_its_chunk_boundary():
    """A batch straddling the Fenwick decode's internal chunking must be
    seamless (the tree state resets per chunk)."""
    n = 1100  # size 2048 tree -> chunk of 2047 rows at the 8 MiB budget
    size = 1 << (n - 1).bit_length()
    chunk = max(32, sampling._FENWICK_CHUNK_BYTES // (2 * (size + 1)))
    m = chunk + 7
    rng = np.random.default_rng(5)
    v = _displacement_draws(n, 1.0, m, rng)
    center = np.random.default_rng(6).permutation(n)
    fenwick = _orders_from_displacements(center, v, method="fenwick")
    check = np.r_[0:3, chunk - 3 : chunk + 3, m - 3 : m]
    chunked = _orders_from_displacements(center, v[check], method="chunked")
    assert np.array_equal(fenwick[check], chunked)


def test_large_n_sampler_end_to_end():
    """sample_mallows_batch at n >= 2000 (the Fenwick regime) still yields
    valid permutations whose draws match a forced chunked decode."""
    n, m = 2000, FENWICK_MIN_ROWS + 8
    center = random_ranking(n, seed=0)
    orders = sample_mallows_batch(center, 0.5, m, seed=9)
    assert orders.shape == (m, n)
    # Spot-check a few rows are permutations.
    for row in orders[:: m // 4]:
        assert np.array_equal(np.sort(row), np.arange(n))
    rng = np.random.default_rng(9)
    v = _displacement_draws(n, 0.5, m, rng)
    assert np.array_equal(
        orders, _orders_from_displacements(center.order, v, method="chunked")
    )


class TestDispatcher:
    def test_shape_gate(self):
        assert _use_fenwick_decode(FENWICK_MIN_ROWS, DEFAULT_DECODE_CROSSOVER)
        assert not _use_fenwick_decode(FENWICK_MIN_ROWS - 1, DEFAULT_DECODE_CROSSOVER)
        assert not _use_fenwick_decode(FENWICK_MIN_ROWS, DEFAULT_DECODE_CROSSOVER - 1)
        # Paper scale stays on the chunked path.
        assert not _use_fenwick_decode(10_000, 500)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            _orders_from_displacements(
                np.arange(3), np.zeros((2, 3), dtype=np.int64), method="bogus"
            )

    def test_set_decode_crossover(self):
        try:
            set_decode_crossover(64)
            assert decode_crossover() == 64
            assert _use_fenwick_decode(FENWICK_MIN_ROWS, 64)
            with pytest.raises(ValueError):
                set_decode_crossover(0)
        finally:
            set_decode_crossover(None)
        assert decode_crossover() == DEFAULT_DECODE_CROSSOVER

    def test_calibrate_without_apply_leaves_threshold(self):
        before = decode_crossover()
        measured = calibrate_decode_crossover(n_grid=(64, 128), m=64, apply=False)
        assert decode_crossover() == before
        assert measured in (64, 128, 129)

    def test_calibrate_apply_sets_threshold(self):
        try:
            measured = calibrate_decode_crossover(n_grid=(64, 128), m=64, apply=True)
            assert decode_crossover() == measured
        finally:
            set_decode_crossover(None)

    def test_calibrate_validates_args(self):
        with pytest.raises(ValueError):
            calibrate_decode_crossover(m=0)
        with pytest.raises(ValueError):
            calibrate_decode_crossover(n_grid=())
