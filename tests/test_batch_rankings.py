"""Property tests for the ``repro.batch`` subsystem.

Three families of invariants:

* :class:`BatchRankings` container algebra — order/position round-trips,
  single-row batches behaving exactly like a :class:`Ranking`;
* batched kernels vs per-sample scalar loops — Kendall tau, top-k group
  counts, the Infeasible Index and PPfair on random fixtures;
* input validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchRankings,
    as_batch_orders,
    batch_count_inversions,
    batch_infeasible_breakdown,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_kendall_tau_pairwise,
    batch_ndcg,
    batch_percent_fair,
    batch_prefix_group_counts,
    batch_topk_group_counts,
    kendall_tau_matrix,
)
from repro.exceptions import LengthMismatchError
from repro.fairness.checks import prefix_group_counts
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import (
    infeasible_index,
    infeasible_index_breakdown,
    percent_fair_positions,
)
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.rankings.quality import ndcg


@st.composite
def order_batch(draw, min_m=1, max_m=6, min_n=1, max_n=10):
    """A random (m, n) batch of permutation rows."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    m = draw(st.integers(min_value=min_m, max_value=max_m))
    rows = [draw(st.permutations(list(range(n)))) for _ in range(m)]
    return np.array(rows, dtype=np.int64)


@st.composite
def grouped_batch(draw):
    """A batch plus a compatible group assignment with non-empty groups."""
    orders = draw(order_batch(min_n=2))
    n = orders.shape[1]
    g = draw(st.integers(min_value=1, max_value=min(3, n)))
    labels = list(range(g)) + [
        draw(st.integers(min_value=0, max_value=g - 1)) for _ in range(n - g)
    ]
    groups = GroupAssignment.from_indices(np.array(labels, dtype=np.int64), g)
    return orders, groups


class TestContainer:
    @settings(max_examples=50, deadline=None)
    @given(order_batch())
    def test_order_position_round_trip(self, orders):
        batch = BatchRankings(orders)
        again = BatchRankings.from_positions(batch.positions)
        assert np.array_equal(again.orders, orders)
        assert np.array_equal(again.positions, batch.positions)

    @settings(max_examples=50, deadline=None)
    @given(order_batch(min_m=1, max_m=1))
    def test_single_row_batch_equals_ranking(self, orders):
        batch = BatchRankings(orders)
        ranking = Ranking(orders[0])
        assert np.array_equal(batch.orders[0], ranking.order)
        assert np.array_equal(batch.positions[0], ranking.positions)
        assert batch[0] == ranking
        assert np.array_equal(batch.prefix(2), ranking.prefix(2)[None, :])

    @settings(max_examples=50, deadline=None)
    @given(order_batch())
    def test_from_rankings_round_trip(self, orders):
        batch = BatchRankings.from_rankings([Ranking(row) for row in orders])
        assert batch == BatchRankings(orders)
        assert [r.order.tolist() for r in batch.to_rankings()] == orders.tolist()

    def test_views_are_read_only(self):
        batch = BatchRankings([[0, 1, 2], [2, 1, 0]])
        with pytest.raises(ValueError):
            batch.orders[0, 0] = 1
        with pytest.raises(ValueError):
            batch.positions[0, 0] = 1

    def test_select_and_len(self):
        batch = BatchRankings([[0, 1], [1, 0], [0, 1]])
        sub = batch.select([2, 0])
        assert len(batch) == 3 and len(sub) == 2
        assert sub[0] == Ranking([0, 1])

    def test_select_boolean_mask(self):
        batch = BatchRankings([[0, 1], [1, 0], [0, 1]])
        sub = batch.select(np.array([True, False, True]))
        assert len(sub) == 2
        assert sub[0] == Ranking([0, 1]) and sub[1] == Ranking([0, 1])
        with pytest.raises(ValueError):
            batch.select(np.array([True, False]))  # wrong mask length

    def test_does_not_freeze_callers_array(self):
        orders = np.array([[0, 1, 2], [2, 1, 0]], dtype=np.int64)
        batch = BatchRankings(orders)
        orders[0, 0] = 7  # caller's array must stay writable...
        assert batch.orders[0, 0] == 0  # ...and the container unaffected

    def test_validation_rejects_non_permutations(self):
        with pytest.raises(ValueError):
            BatchRankings([[0, 0, 1]])
        with pytest.raises(ValueError):
            BatchRankings([[0, 1, 3]])
        with pytest.raises(ValueError):
            BatchRankings(np.arange(4))  # not 2-D
        with pytest.raises(ValueError):
            as_batch_orders(np.arange(4))

    def test_empty_batch(self):
        batch = BatchRankings(np.empty((0, 5), dtype=np.int64))
        assert len(batch) == 0 and batch.n_items == 5
        assert batch.positions.shape == (0, 5)


class TestKendallKernels:
    @settings(max_examples=50, deadline=None)
    @given(order_batch())
    def test_many_vs_one_matches_scalar(self, orders):
        ref = Ranking(np.roll(np.arange(orders.shape[1]), 1))
        got = batch_kendall_tau(BatchRankings(orders), ref)
        expected = [kendall_tau_distance(Ranking(row), ref) for row in orders]
        assert got.tolist() == expected

    @settings(max_examples=50, deadline=None)
    @given(order_batch(min_m=2))
    def test_pairwise_matches_scalar(self, orders):
        a, b = orders, np.flip(orders, axis=1)
        got = batch_kendall_tau_pairwise(a, b)
        expected = [
            kendall_tau_distance(Ranking(x), Ranking(y)) for x, y in zip(a, b)
        ]
        assert got.tolist() == expected

    @settings(max_examples=20, deadline=None)
    @given(order_batch(min_m=2, max_m=4))
    def test_matrix_matches_scalar(self, orders):
        rng = np.random.default_rng(0)
        other = np.stack([rng.permutation(orders.shape[1]) for _ in range(3)])
        got = kendall_tau_matrix(orders, other)
        assert got.shape == (orders.shape[0], 3)
        for s in range(orders.shape[0]):
            for t in range(3):
                assert got[s, t] == kendall_tau_distance(
                    Ranking(orders[s]), Ranking(other[t])
                )

    def test_count_inversions_basics(self):
        seqs = np.array([[0, 1, 2], [2, 1, 0], [1, 0, 2]])
        assert batch_count_inversions(seqs).tolist() == [0, 3, 1]
        assert batch_count_inversions(np.empty((0, 3), int)).shape == (0,)
        assert batch_count_inversions(np.zeros((2, 1), int)).tolist() == [0, 0]

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            batch_kendall_tau(np.array([[0, 1, 2]]), Ranking([0, 1]))
        with pytest.raises(LengthMismatchError):
            batch_kendall_tau_pairwise(np.array([[0, 1]]), np.array([[0, 1, 2]]))


class TestFairnessKernels:
    @settings(max_examples=50, deadline=None)
    @given(grouped_batch())
    def test_infeasible_index_matches_scalar_loop(self, pair):
        orders, groups = pair
        fc = FairnessConstraints.proportional(groups)
        got = batch_infeasible_index(orders, groups, fc)
        expected = [infeasible_index(Ranking(row), groups, fc) for row in orders]
        assert got.tolist() == expected

    @settings(max_examples=50, deadline=None)
    @given(grouped_batch())
    def test_breakdown_and_percent_fair_match_scalar_loop(self, pair):
        orders, groups = pair
        fc = FairnessConstraints.proportional(groups)
        b = batch_infeasible_breakdown(orders, groups, fc)
        pf = batch_percent_fair(orders, groups, fc)
        for s, row in enumerate(orders):
            scalar = infeasible_index_breakdown(Ranking(row), groups, fc)
            assert (b.lower[s], b.upper[s], b.either[s]) == (
                scalar.lower,
                scalar.upper,
                scalar.either,
            )
            assert pf[s] == percent_fair_positions(Ranking(row), groups, fc)

    @settings(max_examples=50, deadline=None)
    @given(grouped_batch())
    def test_prefix_counts_match_scalar(self, pair):
        orders, groups = pair
        counts = batch_prefix_group_counts(orders, groups)
        for s, row in enumerate(orders):
            assert np.array_equal(
                counts[s], prefix_group_counts(Ranking(row), groups)
            )

    @settings(max_examples=50, deadline=None)
    @given(grouped_batch(), st.integers(min_value=0, max_value=12))
    def test_topk_counts_match_scalar(self, pair, k):
        orders, groups = pair
        got = batch_topk_group_counts(orders, groups, k)
        kk = min(k, orders.shape[1])
        for s, row in enumerate(orders):
            expected = np.bincount(
                groups.indices[row[:kk]], minlength=groups.n_groups
            )
            assert np.array_equal(got[s], expected)

    def test_group_length_mismatch_raises(self):
        groups = GroupAssignment.from_indices(np.array([0, 1]))
        fc = FairnessConstraints.proportional(groups)
        with pytest.raises(LengthMismatchError):
            batch_infeasible_index(np.array([[0, 1, 2]]), groups, fc)


class TestNdcgKernel:
    @settings(max_examples=50, deadline=None)
    @given(order_batch())
    def test_matches_scalar(self, orders):
        n = orders.shape[1]
        scores = np.linspace(1.0, 0.1, n) ** 2
        got = batch_ndcg(orders, scores)
        for s, row in enumerate(orders):
            assert got[s] == ndcg(Ranking(row), scores)

    def test_zero_ideal_is_one(self):
        got = batch_ndcg(np.array([[0, 1], [1, 0]]), np.zeros(2))
        assert got.tolist() == [1.0, 1.0]

    def test_truncated_k(self):
        orders = np.array([[2, 0, 1], [0, 1, 2]])
        scores = np.array([0.3, 0.2, 0.9])
        got = batch_ndcg(orders, scores, k=2)
        for s, row in enumerate(orders):
            assert got[s] == ndcg(Ranking(row), scores, k=2)

    def test_bad_inputs(self):
        with pytest.raises(LengthMismatchError):
            batch_ndcg(np.array([[0, 1]]), np.zeros(3))
        with pytest.raises(ValueError):
            batch_ndcg(np.array([[0, 1]]), np.zeros(2), k=5)
