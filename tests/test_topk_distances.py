"""Tests for top-k list distances (Fagin et al. conventions)."""

import pytest

from repro.rankings.distances import footrule_distance, kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.rankings.topk import (
    footrule_topk,
    kendall_tau_topk,
    overlap,
    recall_at_k,
)


class TestKendallTauTopk:
    def test_identical_lists(self):
        assert kendall_tau_topk([1, 2, 3], [1, 2, 3]) == 0.0

    def test_same_items_reduces_to_kt(self):
        a, b = [3, 1, 2, 0], [0, 1, 2, 3]
        expected = kendall_tau_distance(Ranking(a), Ranking(b))
        assert kendall_tau_topk(a, b) == expected

    def test_disjoint_lists_case3_and_4(self):
        # a = [0], b = [1]: i=0 only in a, j=1 only in b -> definite
        # discordance (case 3): distance 1.
        assert kendall_tau_topk([0], [1]) == 1.0

    def test_case2_present_vs_missing(self):
        # a = [0, 1], b = [0]: pair (0,1) in a; in b item 0 present, 1
        # missing => b says 0 above 1, a agrees => 0.
        assert kendall_tau_topk([0, 1], [0]) == 0.0
        # a = [1, 0], b = [0]: a says 1 above 0; b implies 0 above 1 => 1.
        assert kendall_tau_topk([1, 0], [0]) == 1.0

    def test_case4_penalty(self):
        # a = [0, 1], b = [2, 3]: pairs (0,1) and (2,3) are undetermined in
        # one of the lists -> penalty p each; the four cross pairs are
        # definite discordances (case 3).
        for p in (0.0, 0.5, 1.0):
            assert kendall_tau_topk([0, 1], [2, 3], p=p) == 4 + 2 * p

    def test_penalty_bounds(self):
        with pytest.raises(ValueError):
            kendall_tau_topk([0], [0], p=-0.1)
        with pytest.raises(ValueError):
            kendall_tau_topk([0], [0], p=1.1)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_topk([0, 0], [1])

    def test_symmetry(self):
        a, b = [5, 2, 9], [2, 7, 5]
        assert kendall_tau_topk(a, b) == kendall_tau_topk(b, a)

    def test_empty_lists(self):
        assert kendall_tau_topk([], []) == 0.0


class TestFootruleTopk:
    def test_identical(self):
        assert footrule_topk([4, 2, 7], [4, 2, 7]) == 0.0

    def test_same_items_reduces_to_footrule(self):
        a, b = [3, 1, 2, 0], [0, 1, 2, 3]
        expected = footrule_distance(Ranking(a), Ranking(b))
        assert footrule_topk(a, b) == expected

    def test_missing_item_imputed_at_location(self):
        # a = [0], b = [1]; default location = 1.
        # item 0: |0 - 1| = 1; item 1: |1 - 0| = 1.
        assert footrule_topk([0], [1]) == 2.0

    def test_custom_location(self):
        assert footrule_topk([0], [1], location=5) == 10.0

    def test_negative_location_rejected(self):
        with pytest.raises(ValueError):
            footrule_topk([0], [1], location=-1)

    def test_symmetry(self):
        a, b = [5, 2, 9], [2, 7, 5]
        assert footrule_topk(a, b) == footrule_topk(b, a)


class TestOverlapRecall:
    def test_overlap_values(self):
        assert overlap([1, 2, 3], [1, 2, 3]) == 1.0
        assert overlap([1, 2], [3, 4]) == 0.0
        assert overlap([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert overlap([], []) == 1.0

    def test_recall(self):
        assert recall_at_k([5, 2, 9, 1], [5, 2]) == 1.0
        # Head is {5, 2}: neither 9 nor 0 is recovered.
        assert recall_at_k([5, 2, 9, 1], [9, 0]) == 0.0
        assert recall_at_k([9, 5, 2], [9, 0]) == pytest.approx(0.5)
        assert recall_at_k([1, 2, 3], []) == 1.0
