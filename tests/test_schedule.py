"""Tests for the experiment-level work scheduler (:mod:`repro.batch.schedule`).

The contract under test: a task graph of independent, seed-addressed work
units produces the same key-ordered result mapping whether it runs inline,
on a pool of any size, or submitted in any (weight-driven) order — and the
composite ``run_all`` pipeline built on it is byte-identical for every
worker count.
"""

import os
import pickle

import numpy as np
import pytest

from repro.batch import WorkerPool, WorkUnit, iter_units, pool_for, run_units
from repro.batch.schedule import _run_unit
from repro.experiments.runner import reports_digest, run_all


def _draw_unit(seed, count):
    """Seeded unit: the raw stream identity of its SeedSequence."""
    return np.random.default_rng(seed).random(count).tolist()


def _const_unit(seed, value):
    """Deterministic unit: no seed consumed."""
    assert seed is None
    return value


def _pid_unit(seed):
    from repro.batch.parallel import effective_n_jobs, in_worker

    return os.getpid(), in_worker(), effective_n_jobs(6)


def _boom_unit(seed):
    raise RuntimeError("unit failure")


def _units(n=6):
    seqs = np.random.SeedSequence(77).spawn(n)
    return [
        WorkUnit(
            key=("draw", i),
            fn=_draw_unit,
            seed=seqs[i],
            payload=(3,),
            # Deliberately inverted weights: the LPT submission order must
            # never show in the result mapping.
            weight=float(n - i),
        )
        for i in range(n)
    ]


class TestRunUnits:
    def test_results_keyed_in_input_order(self):
        units = _units()
        out = run_units(units, n_jobs=2)
        assert list(out) == [u.key for u in units]

    def test_pooled_matches_inline(self):
        units = _units()
        inline = run_units(units, n_jobs=1)
        for n_jobs in (2, 3):
            assert run_units(units, n_jobs=n_jobs) == inline

    def test_inline_matches_direct_invocation(self):
        units = _units(3)
        out = run_units(units, n_jobs=1)
        for u in units:
            assert out[u.key] == _run_unit(u.fn, u.seed, u.payload)

    def test_seedless_units(self):
        units = [
            WorkUnit(key=i, fn=_const_unit, payload=(i * 10,)) for i in range(4)
        ]
        assert run_units(units, n_jobs=2) == {0: 0, 1: 10, 2: 20, 3: 30}

    def test_empty_graph(self):
        assert run_units([], n_jobs=4) == {}

    def test_duplicate_keys_rejected(self):
        units = [
            WorkUnit(key="same", fn=_const_unit, payload=(1,)),
            WorkUnit(key="same", fn=_const_unit, payload=(2,)),
        ]
        with pytest.raises(ValueError, match="duplicate work-unit key"):
            run_units(units, n_jobs=1)

    def test_single_unit_runs_inline(self):
        (result,) = run_units(
            [WorkUnit(key="solo", fn=_pid_unit)], n_jobs=4
        ).values()
        pid, worker, jobs = result
        assert pid == os.getpid() and not worker

    def test_pooled_units_marked_as_workers_and_unnested(self):
        out = run_units(
            [WorkUnit(key=i, fn=_pid_unit) for i in range(4)], n_jobs=2
        )
        for pid, worker, jobs in out.values():
            assert pid != os.getpid()
            assert worker
            assert jobs == 1  # effective_n_jobs clamps inside pool children

    def test_unit_error_propagates(self):
        units = [WorkUnit(key="boom", fn=_boom_unit)] + _units(2)
        with pytest.raises(RuntimeError, match="unit failure"):
            run_units(units, n_jobs=2)
        with pytest.raises(RuntimeError, match="unit failure"):
            run_units(units, n_jobs=1)

    def test_on_unit_done_reports_every_key_once(self):
        units = _units(5)
        for n_jobs in (1, 3):
            done = []
            run_units(
                units,
                n_jobs=n_jobs,
                on_unit_done=lambda key, seconds: done.append(key),
            )
            assert sorted(done) == sorted(u.key for u in units)

    def test_on_unit_done_inline_fires_in_input_order(self):
        units = _units(4)
        done = []
        run_units(
            units,
            n_jobs=1,
            on_unit_done=lambda key, seconds: done.append(key),
        )
        assert done == [u.key for u in units]

    def test_on_unit_done_reports_measured_seconds(self):
        units = _units(3)
        timings = {}
        run_units(units, n_jobs=1, on_unit_done=timings.__setitem__)
        assert set(timings) == {u.key for u in units}
        assert all(s >= 0.0 for s in timings.values())


class TestIterUnits:
    def test_streamed_set_matches_run_units_for_every_n_jobs(self):
        units = _units(6)
        expected = run_units(units, n_jobs=1)
        for n_jobs in (1, 2, 3):
            completed = list(iter_units(units, n_jobs=n_jobs))
            assert {c.key: c.result for c in completed} == expected

    def test_inline_streams_in_input_order(self):
        units = _units(4)
        keys = [c.key for c in iter_units(units, n_jobs=1)]
        assert keys == [u.key for u in units]

    def test_completed_units_carry_seconds_and_kind(self):
        units = [
            WorkUnit(key=i, fn=_const_unit, payload=(i,), kind=("const",))
            for i in range(3)
        ]
        for n_jobs in (1, 2):
            for c in iter_units(units, n_jobs=n_jobs):
                assert c.seconds >= 0.0
                assert c.kind == ("const",)

    def test_failure_propagates_at_iteration(self):
        units = [WorkUnit(key="boom", fn=_boom_unit)] + _units(2)
        for n_jobs in (1, 2):
            with pytest.raises(RuntimeError, match="unit failure"):
                list(iter_units(units, n_jobs=n_jobs))

    def test_duplicate_keys_rejected(self):
        units = [
            WorkUnit(key="same", fn=_const_unit, payload=(1,)),
            WorkUnit(key="same", fn=_const_unit, payload=(2,)),
        ]
        with pytest.raises(ValueError, match="duplicate work-unit key"):
            list(iter_units(units, n_jobs=1))

    def test_abandoning_the_stream_is_safe(self):
        units = _units(6)
        stream = iter_units(units, n_jobs=2)
        first = next(stream)
        stream.close()
        assert first.key in {u.key for u in units}
        # The shared pool must stay usable after an early close.
        assert run_units(units, n_jobs=2) == run_units(units, n_jobs=1)

    def test_pool_handle_iter_delegates(self):
        units = _units(4)
        completed = {c.key: c.result for c in WorkerPool(2).iter(units)}
        assert completed == run_units(units, n_jobs=1)


class TestWorkerPool:
    def test_pool_for_resolution(self):
        shared = WorkerPool(3)
        assert pool_for(shared, 1) is shared
        assert pool_for(None, 4) == WorkerPool(4)

    def test_handle_is_picklable_and_hashable(self):
        pool = WorkerPool(2)
        assert pickle.loads(pickle.dumps(pool)) == pool
        assert hash(WorkerPool(2)) == hash(pool)

    def test_run_delegates_to_scheduler(self):
        units = _units(4)
        assert WorkerPool(2).run(units) == run_units(units, n_jobs=1)

    def test_run_trials_delegates_to_trial_pool(self):
        from repro.batch import run_trials

        out = WorkerPool(2).run_trials(_trial_probe, 4, seed=9)
        assert out == run_trials(_trial_probe, 4, seed=9, n_jobs=1)


def _trial_probe(trial_index, rng):
    return trial_index, rng.random(2).tolist()


class TestRunAllScheduler:
    def test_run_all_digest_independent_of_n_jobs(self):
        """The whole-pipeline byte-equality contract: panel-level,
        figure-level, and trial-level units mixed through one pool must
        reproduce the serial reports exactly, for every worker count."""
        reports = run_all(fast=True, n_jobs=1)
        digest = reports_digest(reports)
        for n_jobs in (2, 4):
            assert reports_digest(run_all(fast=True, n_jobs=n_jobs)) == digest

    def test_run_all_accepts_shared_pool_handle(self):
        serial = reports_digest(run_all(fast=True, n_jobs=1))
        pooled = reports_digest(run_all(fast=True, pool=WorkerPool(2)))
        assert pooled == serial

    def test_reports_digest_is_order_and_content_sensitive(self):
        a = {"x": "1", "y": "2"}
        assert reports_digest(a) == reports_digest(dict(a))
        assert reports_digest(a) != reports_digest({"x": "1", "y": "3"})
        assert reports_digest(a) != reports_digest({"y": "2", "x": "1"})


def _marker_unit(seed, directory, name, dwell):
    """Unit that leaves a file proving it ran (``dwell`` keeps pooled
    variants busy long enough for cancellation to be observable)."""
    import time as _time

    if dwell:
        _time.sleep(dwell)
    with open(os.path.join(directory, name), "w") as fh:
        fh.write("ran")
    return name


class TestMidStreamFailure:
    """PR-5 left the failure path of ``iter_units`` untested: a unit
    raising mid-stream must cancel still-queued units (not grind the pool
    through work nobody will consume) and leave the pool reusable."""

    def test_inline_failure_cancels_everything_after_it(self, tmp_path):
        units = [
            WorkUnit(key="before", fn=_marker_unit,
                     payload=(str(tmp_path), "before", 0.0)),
            WorkUnit(key="boom", fn=_boom_unit),
            WorkUnit(key="after", fn=_marker_unit,
                     payload=(str(tmp_path), "after", 0.0)),
        ]
        with pytest.raises(RuntimeError, match="unit failure"):
            list(iter_units(units, n_jobs=1))
        # Inline order is input order: the unit before the failure ran,
        # the one behind it was cancelled before ever starting.
        assert (tmp_path / "before").exists()
        assert not (tmp_path / "after").exists()

    def test_pooled_failure_cancels_queued_units(self, tmp_path):
        # The failing unit's weight puts it first into the pool; the 40
        # marker units behind it are queued.  When the failure surfaces,
        # queued futures are cancelled — only the few a second worker
        # grabbed in the race window may have run.
        n_markers = 40
        units = [WorkUnit(key="boom", fn=_boom_unit, weight=100.0)] + [
            WorkUnit(
                key=("marker", i),
                fn=_marker_unit,
                payload=(str(tmp_path), f"m{i}", 0.005),
                weight=1.0,
            )
            for i in range(n_markers)
        ]
        with pytest.raises(RuntimeError, match="unit failure"):
            list(iter_units(units, n_jobs=2))
        ran = len(list(tmp_path.glob("m*")))
        assert ran < n_markers, (
            f"{ran}/{n_markers} queued units ran after the failure — "
            "cancellation did not happen"
        )
        # The shared pool survives the abort and serves again.
        units_again = _units(4)
        assert run_units(units_again, n_jobs=2) == run_units(
            units_again, n_jobs=1
        )

    def test_abandoned_stream_cancels_queued_units(self, tmp_path):
        n_markers = 40
        units = [
            WorkUnit(
                key=("marker", i),
                fn=_marker_unit,
                payload=(str(tmp_path), f"m{i}", 0.005),
            )
            for i in range(n_markers)
        ]
        stream = iter_units(units, n_jobs=2)
        next(stream)
        stream.close()
        assert len(list(tmp_path.glob("m*"))) < n_markers
