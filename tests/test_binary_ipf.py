"""Tests for GrBinaryIPF: validity, fairness, KT optimality vs brute force."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.binary_ipf import GrBinaryIPF
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, random_ranking
from tests.conftest import fair_perms


def make_problem(base, ga):
    return FairRankingProblem(
        base_ranking=base,
        groups=ga,
        constraints=FairnessConstraints.proportional(ga),
    )


class TestBasics:
    def test_valid_and_fair(self):
        ga = GroupAssignment(["a"] * 4 + ["b"] * 4)
        base = Ranking(np.arange(8))  # group a first: unfair
        result = GrBinaryIPF().rank(make_problem(base, ga))
        assert sorted(result.ranking.order.tolist()) == list(range(8))
        assert infeasible_index(
            result.ranking, ga, FairnessConstraints.proportional(ga)
        ) == 0

    def test_rejects_non_binary(self):
        ga = GroupAssignment(["a", "b", "c"])
        with pytest.raises(ValueError):
            GrBinaryIPF().rank(make_problem(Ranking([0, 1, 2]), ga))

    def test_fair_base_unchanged(self):
        ga = GroupAssignment(["a", "b", "a", "b"])
        base = Ranking([0, 1, 2, 3])
        result = GrBinaryIPF().rank(make_problem(base, ga))
        assert result.ranking == base
        assert result.metadata["kendall_tau_to_base"] == 0

    def test_within_group_order_preserved(self):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        base = random_ranking(10, seed=0)
        result = GrBinaryIPF().rank(make_problem(base, ga))
        base_pos = base.positions
        pos = result.ranking.positions
        for gi in range(2):
            members = np.flatnonzero(ga.indices == gi)
            by_out = members[np.argsort(pos[members])]
            assert np.all(np.diff(base_pos[by_out]) > 0)

    def test_unequal_group_sizes(self):
        ga = GroupAssignment(["a"] * 3 + ["b"] * 7)
        base = random_ranking(10, seed=1)
        fc = FairnessConstraints.proportional(ga)
        result = GrBinaryIPF().rank(make_problem(base, ga))
        assert infeasible_index(result.ranking, ga, fc) == 0


class TestOptimality:
    def test_kt_optimal_vs_brute_force(self):
        ga = GroupAssignment(["a", "a", "a", "b", "b", "b"])
        fc = FairnessConstraints.proportional(ga)
        feasible = fair_perms(6, ga, fc)
        for seed in range(8):
            base = random_ranking(6, seed=seed)
            result = GrBinaryIPF().rank(make_problem(base, ga))
            best = min(kendall_tau_distance(r, base) for r in feasible)
            got = kendall_tau_distance(result.ranking, base)
            assert got == best, f"seed {seed}: {got} > optimum {best}"

    def test_kt_optimal_skewed_groups(self):
        ga = GroupAssignment(["a", "a", "b", "b", "b", "b"])
        fc = FairnessConstraints.proportional(ga)
        feasible = fair_perms(6, ga, fc)
        assert feasible, "constraints must be satisfiable"
        for seed in range(8):
            base = random_ranking(6, seed=100 + seed)
            result = GrBinaryIPF().rank(make_problem(base, ga))
            best = min(kendall_tau_distance(r, base) for r in feasible)
            assert kendall_tau_distance(result.ranking, base) == best

    def test_metadata_distance_correct(self):
        ga = GroupAssignment(["a"] * 4 + ["b"] * 4)
        base = random_ranking(8, seed=5)
        result = GrBinaryIPF().rank(make_problem(base, ga))
        assert result.metadata["kendall_tau_to_base"] == kendall_tau_distance(
            result.ranking, base
        )
