"""Tests for :mod:`repro.analysis.cache` — the incremental lint cache.

The contract under test: the cache is a pure accelerator.  A warm run
must be byte-identical to a cold run (and to a run with no cache at
all), edits must invalidate transitively through the module dependency
graph, and a damaged or mismatched cache file must degrade to a cold
run, never to a stale answer.
"""

import dataclasses
import json
import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DEFAULT_CONFIG,
    LintCache,
    LintEngine,
    lint_paths,
    render_json,
)
from repro.analysis.cache import config_fingerprint

#: File count of the synthetic tree below (4 __init__ + 3 modules).
TREE_FILES = 7


def make_tree(root):
    """A small cross-module project with real findings:

    * ``repro.utils.helpers.stamp`` reads the clock directly (REP002);
    * ``repro.serve.core.tick`` reaches it transitively (REP009, with a
      witness chain crossing the module boundary);
    * ``repro.fairness.checks`` is clean and depends on nothing.
    """
    pkg = root / "repro"
    for sub in ("serve", "utils", "fairness"):
        (pkg / sub).mkdir(parents=True)
    for d in (pkg, pkg / "serve", pkg / "utils", pkg / "fairness"):
        (d / "__init__.py").write_text("")
    (pkg / "utils" / "helpers.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    (pkg / "serve" / "core.py").write_text(
        "from repro.utils.helpers import stamp\n"
        "\n"
        "\n"
        "def tick():\n"
        "    return stamp()\n"
    )
    (pkg / "fairness" / "checks.py").write_text(
        "def score(xs):\n"
        "    return sum(xs)\n"
    )
    return pkg


class TestIncrementalCache:
    def test_warm_run_is_byte_identical_and_all_hits(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")

        uncached = render_json(lint_paths([str(pkg)]))
        assert '"REP009"' in uncached and '"witness"' in uncached

        cold_cache = LintCache(cache_path, DEFAULT_CONFIG)
        cold = render_json(lint_paths([str(pkg)], cache=cold_cache))
        cold_cache.save()
        assert cold_cache.stats.as_dict() == {
            "summary_hits": 0,
            "summary_misses": TREE_FILES,
            "project_reused": 0,
            "project_recomputed": TREE_FILES,
        }

        warm_cache = LintCache(cache_path, DEFAULT_CONFIG)
        warm = render_json(lint_paths([str(pkg)], cache=warm_cache))
        assert warm_cache.stats.as_dict() == {
            "summary_hits": TREE_FILES,
            "summary_misses": 0,
            "project_reused": TREE_FILES,
            "project_recomputed": 0,
        }
        assert cold == uncached
        assert warm == uncached

    def test_edit_invalidates_transitively(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        cache = LintCache(cache_path, DEFAULT_CONFIG)
        before = render_json(lint_paths([str(pkg)], cache=cache))
        cache.save()

        # A comment-only edit: new content hash, same findings.
        helpers = pkg / "utils" / "helpers.py"
        helpers.write_text(helpers.read_text() + "\n# touched\n")

        cache = LintCache(cache_path, DEFAULT_CONFIG)
        after = render_json(lint_paths([str(pkg)], cache=cache))
        # Exactly one summary re-parsed; exactly the edited module plus
        # its dependents (repro.serve.core imports it) recomputed — the
        # unrelated modules reuse their stored transitive findings.
        assert cache.stats.as_dict() == {
            "summary_hits": TREE_FILES - 1,
            "summary_misses": 1,
            "project_reused": TREE_FILES - 2,
            "project_recomputed": 2,
        }
        assert after == before

    def test_one_cache_serves_every_rule_selection(self, tmp_path):
        # select/ignore are excluded from the fingerprint on purpose:
        # summaries store findings for every rule, the engine filters.
        pkg = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        cache = LintCache(cache_path, DEFAULT_CONFIG)
        lint_paths([str(pkg)], cache=cache)
        cache.save()

        narrowed = DEFAULT_CONFIG.with_rules(select=("REP002",))
        assert config_fingerprint(narrowed) == config_fingerprint(
            DEFAULT_CONFIG
        )
        cache = LintCache(cache_path, narrowed)
        result = LintEngine(narrowed).lint_paths([str(pkg)], cache=cache)
        assert cache.stats.summary_hits == TREE_FILES
        assert {f.rule for f in result.active} == {"REP002"}

    def test_scope_change_fences_the_whole_cache(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        cache = LintCache(cache_path, DEFAULT_CONFIG)
        lint_paths([str(pkg)], cache=cache)
        cache.save()

        rescoped = dataclasses.replace(
            DEFAULT_CONFIG, clock_free_modules=("repro.serve",)
        )
        assert config_fingerprint(rescoped) != config_fingerprint(
            DEFAULT_CONFIG
        )
        cache = LintCache(cache_path, rescoped)
        LintEngine(rescoped).lint_paths([str(pkg)], cache=cache)
        assert cache.stats.summary_hits == 0
        assert cache.stats.summary_misses == TREE_FILES

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json at all")

        cache = LintCache(str(cache_path), DEFAULT_CONFIG)
        result = render_json(lint_paths([str(pkg)], cache=cache))
        assert result == render_json(lint_paths([str(pkg)]))
        cache.save()  # rewrites a valid file ...
        json.loads(cache_path.read_text())
        cache = LintCache(str(cache_path), DEFAULT_CONFIG)
        lint_paths([str(pkg)], cache=cache)
        assert cache.stats.summary_hits == TREE_FILES  # ... that warms up

    def test_cache_file_is_byte_deterministic(self, tmp_path):
        pkg = make_tree(tmp_path)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for path in (first, second):
            cache = LintCache(str(path), DEFAULT_CONFIG)
            lint_paths([str(pkg)], cache=cache)
            cache.save()
        assert first.read_text() == second.read_text()


# ---------------------------------------------------------------------------
# Property: caching never changes the answer
# ---------------------------------------------------------------------------

#: Body shapes the generator composes functions from: a clock read, a
#: pure return, an unordered iteration, and a call to the previous
#: function (which is what builds transitive chains of random depth).
_BODY_KINDS = 4


def _render_module(kinds):
    lines = ["import time", ""]
    for i, kind in enumerate(kinds):
        lines.append(f"def f{i}():")
        if kind == 0:
            lines.append("    return time.time()")
        elif kind == 1:
            lines.append("    return 1")
        elif kind == 2:
            lines.append("    for x in set(range(3)):")
            lines.append("        pass")
            lines.append("    return x")
        elif i > 0:
            lines.append(f"    return f{i - 1}()")
        else:
            lines.append("    return 0")
    return "\n".join(lines) + "\n"


class TestCachePropertyBased:
    @given(
        kinds=st.lists(
            st.integers(min_value=0, max_value=_BODY_KINDS - 1),
            min_size=1,
            max_size=6,
        )
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cached_and_uncached_findings_json_agree(self, kinds):
        source = _render_module(kinds)
        with tempfile.TemporaryDirectory() as td:
            serve = os.path.join(td, "repro", "serve")
            os.makedirs(serve)
            for package in (os.path.join(td, "repro"), serve):
                with open(
                    os.path.join(package, "__init__.py"), "w"
                ) as fh:
                    fh.write("")
            with open(os.path.join(serve, "core.py"), "w") as fh:
                fh.write(source)
            target = os.path.join(td, "repro")
            cache_path = os.path.join(td, "cache.json")

            uncached = render_json(lint_paths([target]))
            cache = LintCache(cache_path, DEFAULT_CONFIG)
            cold = render_json(lint_paths([target], cache=cache))
            cache.save()
            cache = LintCache(cache_path, DEFAULT_CONFIG)
            warm = render_json(lint_paths([target], cache=cache))

            assert cold == uncached
            assert warm == uncached
