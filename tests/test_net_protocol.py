"""Byte-level tests of the sans-IO HTTP core (`repro.net.protocol`).

Everything here drives :class:`RequestParser` / :class:`ResponseParser`
with literal byte strings — zero sockets, zero sleeps, zero asyncio —
which is the point of the sans-IO split: the whole wire grammar
(framing, limits, keep-alive, violations) is deterministic unit-test
material, and only the thin shell needs a real listener.
"""

from __future__ import annotations

import pytest

from repro.net.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    HttpLimits,
    HttpRequest,
    HttpResponse,
    ProtocolViolation,
    RequestParser,
    ResponseParser,
    encode_request,
    encode_response,
)


def req(
    lines: list[str], body: bytes = b"", *, content_length: bool = True
) -> bytes:
    """Assemble raw request bytes from start/header lines + body."""
    if content_length and body:
        lines = [*lines, f"Content-Length: {len(body)}"]
    return "\r\n".join(lines).encode() + b"\r\n\r\n" + body


def only(events: list) -> object:
    assert len(events) == 1, events
    return events[0]


class TestRequestParsing:
    def test_simple_get_parses_whole(self):
        parser = RequestParser()
        event = only(parser.feed(req(["GET /healthz HTTP/1.1", "Host: x"])))
        assert isinstance(event, HttpRequest)
        assert event.method == "GET"
        assert event.target == "/healthz"
        assert event.version == "HTTP/1.1"
        assert event.body == b""
        assert event.keep_alive is True
        assert event.header("host") == "x"

    def test_byte_by_byte_feed_is_equivalent(self):
        wire = req(["POST /v1/rank HTTP/1.1", "Host: x"], b'{"a":1}')
        whole = only(RequestParser().feed(wire))
        parser = RequestParser()
        events: list = []
        for i in range(len(wire)):
            events.extend(parser.feed(wire[i : i + 1]))
        assert only(events) == whole

    def test_body_split_across_feeds(self):
        parser = RequestParser()
        head = req(["POST /v1/rank HTTP/1.1", "Host: x", "Content-Length: 8"])
        assert parser.feed(head) == []
        assert parser.feed(b"1234") == []
        event = only(parser.feed(b"5678"))
        assert event.body == b"12345678"

    def test_pipelined_requests_in_one_buffer(self):
        wire = req(["GET /a HTTP/1.1", "Host: x"]) + req(
            ["POST /b HTTP/1.1", "Host: x"], b"hi"
        )
        events = RequestParser().feed(wire)
        assert [e.target for e in events] == ["/a", "/b"]
        assert events[1].body == b"hi"

    def test_header_names_lowercased_and_values_stripped(self):
        event = only(
            RequestParser().feed(
                req(["GET / HTTP/1.1", "HoSt:  spaced.example  ", "X-Thing: 1"])
            )
        )
        assert ("host", "spaced.example") in event.headers
        assert event.header("x-thing") == "1"
        assert event.header("absent", "d") == "d"

    def test_missing_content_length_means_empty_body(self):
        event = only(RequestParser().feed(req(["POST /v1/rank HTTP/1.1", "Host: x"])))
        assert event.body == b""


class TestKeepAliveStateMachine:
    def test_http11_defaults_on_http10_defaults_off(self):
        on = only(RequestParser().feed(req(["GET / HTTP/1.1", "Host: x"])))
        off = only(RequestParser().feed(req(["GET / HTTP/1.0", "Host: x"])))
        assert on.keep_alive is True
        assert off.keep_alive is False

    def test_connection_header_overrides_both_defaults(self):
        closed = only(
            RequestParser().feed(
                req(["GET / HTTP/1.1", "Host: x", "Connection: close"])
            )
        )
        kept = only(
            RequestParser().feed(
                req(["GET / HTTP/1.0", "Host: x", "Connection: keep-alive"])
            )
        )
        assert closed.keep_alive is False
        assert kept.keep_alive is True

    def test_parser_ignores_data_after_a_close_message(self):
        parser = RequestParser()
        wire = req(["GET /a HTTP/1.1", "Host: x", "Connection: close"])
        assert only(parser.feed(wire)).target == "/a"
        assert parser.state == "closed"
        assert parser.feed(req(["GET /b HTTP/1.1", "Host: x"])) == []

    def test_keep_alive_parser_accepts_sequential_messages(self):
        parser = RequestParser()
        first = only(parser.feed(req(["GET /a HTTP/1.1", "Host: x"])))
        second = only(parser.feed(req(["GET /b HTTP/1.1", "Host: x"])))
        assert (first.target, second.target) == ("/a", "/b")


class TestViolations:
    @pytest.mark.parametrize(
        "start_line, status",
        [
            ("GET /x", 400),  # two tokens
            ("GET /x HTTP/1.1 extra", 400),
            ("GE T /x HTTP/1.1", 400),
            ("GET /x y HTTP/1.1", 400),
            ("GET /x HTTP/2.0", 505),
            ("GET /x FTP/1.0", 400),
            ("" , 400),
        ],
    )
    def test_bad_request_lines(self, start_line, status):
        event = only(RequestParser().feed(req([start_line, "Host: x"])))
        assert isinstance(event, ProtocolViolation)
        assert event.status == status

    @pytest.mark.parametrize(
        "header, status, code",
        [
            ("Transfer-Encoding: chunked", 501, "transfer_encoding_unsupported"),
            ("Content-Length: abc", 400, "bad_content_length"),
            ("Content-Length: -1", 400, "bad_content_length"),
            ("no-colon-here", 400, "bad_header"),
            (" folded: value", 400, "bad_header"),
            ("bad name: v", 400, "bad_header"),
        ],
    )
    def test_bad_headers(self, header, status, code):
        event = only(
            RequestParser().feed(req(["GET / HTTP/1.1", "Host: x", header]))
        )
        assert isinstance(event, ProtocolViolation)
        assert (event.status, event.code) == (status, code)

    def test_duplicate_content_length_rejected(self):
        event = only(
            RequestParser().feed(
                req(
                    ["POST / HTTP/1.1", "Host: x",
                     "Content-Length: 2", "Content-Length: 3"],
                )
            )
        )
        assert isinstance(event, ProtocolViolation)
        assert event.status == 400

    def test_non_ascii_headers_rejected(self):
        wire = b"GET / HTTP/1.1\r\nHost: \xff\xfe\r\n\r\n"
        event = only(RequestParser().feed(wire))
        assert isinstance(event, ProtocolViolation)
        assert event.status == 400

    def test_parser_refuses_input_after_a_violation(self):
        parser = RequestParser()
        event = only(parser.feed(req(["broken", "Host: x"])))
        assert isinstance(event, ProtocolViolation)
        assert parser.failed
        assert parser.feed(req(["GET / HTTP/1.1", "Host: x"])) == []


class TestLimits:
    def test_oversized_header_block_with_terminator_431(self):
        limits = HttpLimits(max_header_bytes=128)
        wire = req(["GET / HTTP/1.1", "Host: x", "X-Pad: " + "a" * 200])
        event = only(RequestParser(limits).feed(wire))
        assert isinstance(event, ProtocolViolation)
        assert event.status == 431

    def test_unterminated_header_flood_431(self):
        limits = HttpLimits(max_header_bytes=128)
        parser = RequestParser(limits)
        event = only(parser.feed(b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 300))
        assert isinstance(event, ProtocolViolation)
        assert event.status == 431

    def test_declared_body_over_limit_413(self):
        limits = HttpLimits(max_body_bytes=64)
        wire = req(
            ["POST / HTTP/1.1", "Host: x", "Content-Length: 100"],
        )
        event = only(RequestParser(limits).feed(wire))
        assert isinstance(event, ProtocolViolation)
        assert (event.status, event.code) == (413, "body_too_large")

    def test_body_at_limit_is_accepted(self):
        limits = HttpLimits(max_body_bytes=4)
        event = only(
            RequestParser(limits).feed(req(["POST / HTTP/1.1", "Host: x"], b"abcd"))
        )
        assert isinstance(event, HttpRequest)
        assert event.body == b"abcd"

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            HttpLimits(max_header_bytes=1)
        with pytest.raises(ValueError):
            HttpLimits(max_body_bytes=-1)
        defaults = HttpLimits()
        assert defaults.max_header_bytes == DEFAULT_MAX_HEADER_BYTES
        assert defaults.max_body_bytes == DEFAULT_MAX_BODY_BYTES


class TestResponseParsing:
    def test_response_round_trip_through_encoder(self):
        wire = encode_response(
            200, b'{"ok":1}', extra_headers=(("Retry-After", "1"),)
        )
        event = only(ResponseParser().feed(wire))
        assert isinstance(event, HttpResponse)
        assert event.status == 200
        assert event.reason == "OK"
        assert event.body == b'{"ok":1}'
        assert event.header("retry-after") == "1"
        assert event.header("content-type") == "application/json"
        assert event.keep_alive is True

    def test_close_response_round_trip(self):
        wire = encode_response(429, b"{}", keep_alive=False)
        event = only(ResponseParser().feed(wire))
        assert event.keep_alive is False
        assert event.header("connection") == "close"

    def test_reason_phrases_with_spaces_and_empty(self):
        spaced = only(
            ResponseParser().feed(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
        )
        empty = only(
            ResponseParser().feed(b"HTTP/1.1 200 \r\nContent-Length: 0\r\n\r\n")
        )
        assert spaced.reason == "Not Found"
        assert empty.reason == ""

    def test_missing_content_length_means_empty_body(self):
        event = only(ResponseParser().feed(b"HTTP/1.1 204 No Content\r\n\r\n"))
        assert event.body == b""

    @pytest.mark.parametrize(
        "line",
        [b"HTTP/1.1\r\n\r\n", b"HTTP/3.0 200 OK\r\n\r\n", b"HTTP/1.1 2x0 OK\r\n\r\n"],
    )
    def test_bad_status_lines(self, line):
        event = only(ResponseParser().feed(line))
        assert isinstance(event, ProtocolViolation)
        assert event.status == 400

    def test_body_split_across_feeds(self):
        parser = ResponseParser()
        assert parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nab") == []
        event = only(parser.feed(b"cd"))
        assert event.body == b"abcd"


class TestEncoders:
    def test_request_encoder_round_trips_through_request_parser(self):
        wire = encode_request(
            "POST", "/v1/rank", host="h:1", body=b'{"x":2}',
            extra_headers=(("X-Trace", "t1"),),
        )
        event = only(RequestParser().feed(wire))
        assert isinstance(event, HttpRequest)
        assert (event.method, event.target) == ("POST", "/v1/rank")
        assert event.header("host") == "h:1"
        assert event.header("x-trace") == "t1"
        assert event.body == b'{"x":2}'
        assert event.keep_alive is True

    def test_request_encoder_close_flag(self):
        wire = encode_request("GET", "/stats", host="h", keep_alive=False)
        event = only(RequestParser().feed(wire))
        assert event.keep_alive is False

    def test_empty_bodies_always_carry_explicit_framing(self):
        assert b"Content-Length: 0" in encode_response(204)
        assert b"Content-Length: 0" in encode_request("GET", "/", host="h")
        # No Content-Type header without a body.
        assert b"Content-Type" not in encode_response(204)

    def test_unknown_status_gets_placeholder_reason(self):
        event = only(ResponseParser().feed(encode_response(299)))
        assert event.reason == "Unknown"


class TestSansIOContract:
    def test_protocol_module_is_io_and_clock_free(self):
        """The core must stay importable without sockets/clock/asyncio —
        the property the REP002/REP009 contracts pin down statically."""
        import repro.net.protocol as mod

        source = open(mod.__file__, encoding="utf-8").read()
        for needle in ("import socket", "import asyncio", "import time"):
            assert needle not in source
