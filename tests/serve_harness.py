"""The deterministic serving-test harness.

The serving tier's semantics live entirely in the sans-IO
:class:`~repro.serve.core.ServerCore` (explicit ``now`` everywhere, no
clock reads, no event loop), so concurrency behaviour — batching-window
coalescing, max-batch cutoff, deadline expiry, queue promotion,
cancellation — is testable as plain synchronous state transitions.  This
module is the driver the serve tests share:

* :class:`FakeClock` — time is a number we move by hand;
* :class:`RecordingWaiter` — the test stand-in for ``asyncio.Future``
  (satisfies the :class:`~repro.serve.protocol.Waiter` protocol);
* :class:`CoreDriver` — owns one core + clock, exposes ``submit`` /
  ``advance`` / ``tick`` / ``run`` and drains dispatched batches
  *inline* through the real engine (``rank_many_submit`` at
  ``n_jobs=1``), so every test exercises production code end to end
  without a single real sleep.

Not a test file itself — imported by ``test_serve_batching.py`` and
``test_serve.py``.
"""

from __future__ import annotations

from repro.engine.core import RankingEngine, RankingRequest, RankingResponse
from repro.serve.core import ServerCore
from repro.serve.protocol import ServeConfig, Ticket


class FakeClock:
    """Manual time: ``now`` only moves when a test says so."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        if dt < 0.0:
            raise ValueError(f"time cannot run backwards (dt={dt})")
        self.now += dt
        return self.now


class RecordingWaiter:
    """A :class:`~repro.serve.protocol.Waiter` that just remembers.

    ``result``/``error`` hold whatever the core delivered; ``cancel()``
    models the client abandoning the wait (as ``Future.cancel()`` does),
    after which the core must not settle it.
    """

    def __init__(self):
        self.result: RankingResponse | None = None
        self.error: BaseException | None = None
        self._done = False
        self._cancelled = False

    def set_result(self, result: RankingResponse) -> None:
        if self._done or self._cancelled:
            raise AssertionError("waiter settled twice")
        self.result = result
        self._done = True

    def set_exception(self, error: BaseException) -> None:
        if self._done or self._cancelled:
            raise AssertionError("waiter settled twice")
        self.error = error
        self._done = True

    def cancel(self) -> None:
        self._cancelled = True

    def done(self) -> bool:
        return self._done

    def cancelled(self) -> bool:
        return self._cancelled


class CoreDriver:
    """One ServerCore under one FakeClock, with inline engine drains.

    The driver is the test's event loop: ``submit`` hands the core a
    recording waiter, ``advance``/``tick`` move time and collect the
    batches the core wants dispatched, ``run`` drains a batch through the
    engine synchronously (``n_jobs=1`` — worker-count independence is the
    asyncio integration suite's job), and ``drain`` loops until nothing
    is live.  Dispatched-but-unrun batches accumulate in ``pending`` so a
    test can interleave expiry/cancellation *between* dispatch and
    completion — the race window that matters.
    """

    def __init__(self, engine: RankingEngine, config: ServeConfig | None = None, **overrides):
        if config is None:
            config = ServeConfig(**overrides)
        self.engine = engine
        self.clock = FakeClock()
        self.core = ServerCore(engine, config)
        self.pending: list[list[Ticket]] = []
        self.waiters: list[RecordingWaiter] = []

    def submit(
        self, request: RankingRequest, *, deadline: float | None = None
    ) -> tuple[Ticket, RecordingWaiter]:
        """Submit at the current fake time; admission errors propagate."""
        waiter = RecordingWaiter()
        ticket = self.core.submit(
            request, now=self.clock.now, waiter=waiter, deadline=deadline
        )
        self.waiters.append(waiter)
        return ticket, waiter

    def tick(self) -> list[list[Ticket]]:
        """One scheduling tick at the current fake time; newly dispatched
        batches are queued on ``pending`` and returned."""
        batches = self.core.poll(self.clock.now)
        self.pending.extend(batches)
        return batches

    def advance(self, dt: float) -> list[list[Ticket]]:
        """Move time forward and tick."""
        self.clock.advance(dt)
        return self.tick()

    def run(self, batch: list[Ticket]) -> None:
        """Drain one dispatched batch inline through the real engine."""
        self.engine.rank_many_submit(
            [ticket.request for ticket in batch],
            n_jobs=1,
            on_response=lambda response: self.core.on_response(
                batch[response.index], response, self.clock.now
            ),
            on_error=lambda index, request, error: self.core.on_request_error(
                batch[index], error, self.clock.now
            ),
        )

    def run_pending(self) -> int:
        """Drain every dispatched-but-unrun batch; returns batches run."""
        batches, self.pending = self.pending, []
        for batch in batches:
            self.run(batch)
        return len(batches)

    def drain(self, *, max_rounds: int = 100) -> None:
        """Tick-and-run until the core has no live tickets (bounded, so a
        stuck state machine fails the test instead of hanging it)."""
        for _ in range(max_rounds):
            if self.core.live == 0 and not self.pending:
                return
            self.run_pending()
            when = self.core.next_event_at()
            if when is not None and when > self.clock.now:
                self.clock.advance(when - self.clock.now)
            self.tick()
        raise AssertionError(
            f"core did not drain in {max_rounds} rounds "
            f"(live={self.core.live}, pending={len(self.pending)})"
        )
