"""Tests for shared utilities: rng, validation, bootstrap, tables."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidPermutationError, LengthMismatchError
from repro.utils.bootstrap import bootstrap_ci
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_series, format_table
from repro.utils.validation import as_permutation_array, check_same_length, is_permutation


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_spawn_independent_streams(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_generators(7, 3)]
        b = [g.random() for g in spawn_generators(7, 3)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2


class TestValidation:
    def test_is_permutation_true(self):
        assert is_permutation([2, 0, 1])
        assert is_permutation([])
        assert is_permutation(np.array([0]))

    def test_is_permutation_false(self):
        assert not is_permutation([0, 0])
        assert not is_permutation([1, 2])
        assert not is_permutation([-1, 0])
        assert not is_permutation([[0, 1]])
        assert not is_permutation(np.array(["a", "b"]))

    def test_float_integral_ok(self):
        assert is_permutation(np.array([1.0, 0.0]))
        assert not is_permutation(np.array([0.5, 1.0]))

    def test_as_permutation_array_copies(self):
        src = np.array([0, 1, 2])
        out = as_permutation_array(src)
        src[0] = 9
        assert out.tolist() == [0, 1, 2]

    def test_as_permutation_array_raises(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation_array([3, 3])

    def test_check_same_length(self):
        with pytest.raises(LengthMismatchError):
            check_same_length(np.zeros(2), np.zeros(3))


class TestBootstrap:
    def test_point_estimate(self):
        r = bootstrap_ci(np.array([1.0, 2.0, 3.0]), seed=0)
        assert r.estimate == pytest.approx(2.0)

    def test_interval_contains_estimate_for_mean(self):
        data = np.random.default_rng(0).normal(5.0, 1.0, size=200)
        r = bootstrap_ci(data, seed=1)
        assert r.low <= r.estimate <= r.high

    def test_median_statistic(self):
        data = np.array([1.0, 2.0, 100.0])
        r = bootstrap_ci(data, statistic=np.median, seed=0)
        assert r.estimate == 2.0

    def test_custom_statistic(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        r = bootstrap_ci(data, statistic=lambda x: float(np.max(x)), n_resamples=50, seed=0)
        assert r.estimate == 4.0
        assert r.high <= 4.0

    def test_singleton_degenerate(self):
        r = bootstrap_ci(np.array([3.0]), seed=0)
        assert r.low == r.high == r.estimate == 3.0

    def test_errors(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci(np.zeros((2, 2)))

    def test_reproducible(self):
        data = np.arange(20, dtype=float)
        a = bootstrap_ci(data, seed=3)
        b = bootstrap_ci(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_halfwidth(self):
        r = bootstrap_ci(np.arange(50, dtype=float), seed=0)
        assert r.halfwidth == pytest.approx((r.high - r.low) / 2)

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=50))
    def test_property_interval_ordered(self, data):
        r = bootstrap_ci(np.array(data), n_resamples=100, seed=0)
        assert r.low <= r.high

    def test_coverage_sanity(self):
        # ~95% CIs over repeated draws should cover the true mean most of
        # the time (loose check: >= 80% of 50 trials).
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(50):
            data = rng.normal(0.0, 1.0, size=100)
            r = bootstrap_ci(data, n_resamples=300, seed=rng)
            hits += r.low <= 0.0 <= r.high
        assert hits >= 40


class TestTables:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "3" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_ci_cells(self):
        text = format_table(["v"], [[(1.0, 0.5, 1.5)]])
        assert "1.0000 [0.5000, 1.5000]" in text

    def test_float_formatting(self):
        assert "0.1235" in format_table(["v"], [[0.12345]])

    def test_series(self):
        text = format_series([1, 2], {"s": [0.1, 0.2]}, x_label="k")
        assert text.splitlines()[0].startswith("k")

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], {"s": [0.1]})
