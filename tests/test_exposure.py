"""Tests for exposure-based group fairness metrics."""

import numpy as np
import pytest

from repro.fairness.exposure import (
    disparate_treatment,
    exposure_parity_gap,
    exposure_parity_ratio,
    expected_exposure_under_mallows,
    group_exposures,
)
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking, random_ranking
from repro.rankings.quality import exposure, position_discounts


@pytest.fixture
def blocked_groups():
    return GroupAssignment(["a"] * 5 + ["b"] * 5)


class TestGroupExposures:
    def test_total_matches_item_exposure(self, blocked_groups):
        r = random_ranking(10, seed=0)
        per_group = group_exposures(r, blocked_groups)
        sizes = blocked_groups.group_sizes
        assert (per_group * sizes).sum() == pytest.approx(exposure(r).sum())

    def test_segregated_favours_top_group(self, blocked_groups):
        seg = Ranking(np.arange(10))  # group a occupies the top half
        per_group = group_exposures(seg, blocked_groups)
        assert per_group[0] > per_group[1]

    def test_alternating_nearly_equal(self, blocked_groups):
        alt = Ranking([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        per_group = group_exposures(alt, blocked_groups)
        # Group a holds the odd positions (1st, 3rd, ...) so it is slightly
        # ahead, but the gap is small.
        assert per_group[0] > per_group[1]
        assert per_group[0] - per_group[1] < 0.15

    def test_topk_cutoff(self, blocked_groups):
        seg = Ranking(np.arange(10))
        per_group = group_exposures(seg, blocked_groups, k=5)
        assert per_group[1] == 0.0  # group b entirely below the cut

    def test_empty_group_zero(self):
        ga = GroupAssignment.from_indices(np.array([0, 0, 0]), n_groups=2)
        per_group = group_exposures(Ranking([0, 1, 2]), ga)
        assert per_group[1] == 0.0


class TestParityMetrics:
    def test_gap_zero_iff_equal(self):
        # Two groups, one item each, same position impossible — use a
        # 2-item ranking where both exposures differ.
        ga = GroupAssignment(["a", "b"])
        r = Ranking([0, 1])
        assert exposure_parity_gap(r, ga) > 0

    def test_gap_on_segregated_vs_alternating(self, blocked_groups):
        seg = Ranking(np.arange(10))
        alt = Ranking([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert exposure_parity_gap(seg, blocked_groups) > exposure_parity_gap(
            alt, blocked_groups
        )

    def test_ratio_bounds(self, blocked_groups):
        for seed in range(10):
            r = random_ranking(10, seed=seed)
            ratio = exposure_parity_ratio(r, blocked_groups)
            assert 0.0 <= ratio <= 1.0

    def test_ratio_single_group(self):
        ga = GroupAssignment(["a", "a"])
        assert exposure_parity_ratio(Ranking([0, 1]), ga) == 1.0

    def test_topk_ratio_zero_when_excluded(self, blocked_groups):
        seg = Ranking(np.arange(10))
        assert exposure_parity_ratio(seg, blocked_groups, k=5) == 0.0


class TestDisparateTreatment:
    def test_equal_relevance_reduces_to_parity(self, blocked_groups):
        r = Ranking(np.arange(10))
        result = disparate_treatment(r, blocked_groups, np.ones(10))
        per_group = group_exposures(r, blocked_groups)
        expected = per_group.min() / per_group.max()
        assert result.ratio == pytest.approx(expected)

    def test_merit_proportional_exposure_scores_high(self):
        # Group a has twice the relevance and sits on top: exposure tracks
        # relevance, so treatment is closer to parity than raw exposure.
        ga = GroupAssignment(["a", "a", "b", "b"])
        r = Ranking([0, 1, 2, 3])
        rel = np.array([2.0, 2.0, 1.0, 1.0])
        treat = disparate_treatment(r, ga, rel)
        raw = exposure_parity_ratio(r, ga)
        assert treat.ratio > raw

    def test_rejects_negative_relevance(self, blocked_groups):
        with pytest.raises(ValueError):
            disparate_treatment(
                Ranking(np.arange(10)), blocked_groups, -np.ones(10)
            )

    def test_nan_for_zero_relevance_group(self):
        ga = GroupAssignment(["a", "b"])
        result = disparate_treatment(Ranking([0, 1]), ga, np.array([1.0, 0.0]))
        assert np.isnan(result.exposure_per_relevance[1])


class TestMallowsExposure:
    def test_noise_reduces_exposure_gap(self, blocked_groups):
        seg = Ranking(np.arange(10))
        base_gap = exposure_parity_gap(seg, blocked_groups)
        noisy = expected_exposure_under_mallows(
            seg, theta=0.2, groups=blocked_groups, m=300, seed=0
        )
        noisy_gap = float(noisy.max() - noisy.min())
        assert noisy_gap < base_gap

    def test_huge_theta_keeps_center_exposure(self, blocked_groups):
        seg = Ranking(np.arange(10))
        noisy = expected_exposure_under_mallows(
            seg, theta=40.0, groups=blocked_groups, m=50, seed=1
        )
        assert np.allclose(noisy, group_exposures(seg, blocked_groups))

    @pytest.mark.parametrize("m", [0, -1, -100])
    def test_rejects_nonpositive_sample_count(self, blocked_groups, m):
        # Regression: m <= 0 used to return silently all-zero exposures.
        seg = Ranking(np.arange(10))
        with pytest.raises(ValueError):
            expected_exposure_under_mallows(
                seg, theta=0.5, groups=blocked_groups, m=m, seed=0
            )

    def test_matches_per_sample_scalar_loop(self, blocked_groups):
        """The batched-kernel rewrite equals the original per-row loop."""
        from repro.mallows.sampling import sample_mallows_batch

        seg = Ranking(np.arange(10))
        m = 40
        got = expected_exposure_under_mallows(
            seg, theta=0.5, groups=blocked_groups, m=m, seed=3, k=6
        )
        orders = sample_mallows_batch(seg, 0.5, m, seed=3)
        totals = np.zeros(blocked_groups.n_groups)
        for row in orders:
            totals += group_exposures(Ranking(row), blocked_groups, k=6)
        assert np.allclose(got, totals / m)
