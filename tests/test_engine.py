"""Tests for the serving facade (:mod:`repro.engine`).

The contracts under test: the registry resolves the whole zoo by name,
``rank`` matches the legacy constructor path byte for byte, ``rank_many``
streams as-completed responses that are byte-identical to the serial loop
for every ``n_jobs``, the engine session owns its cache/cost state, and the
measured-cost model feeds scheduler weights.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms.base import FairRankingAlgorithm, FairRankingProblem
from repro.engine import (
    CostModel,
    EngineConfig,
    RankingEngine,
    RankingRequest,
    algorithm_names,
    algorithm_spec,
    make_algorithm,
    register_algorithm,
    responses_digest,
    unregister_algorithm,
)
from repro.groups.attributes import GroupAssignment


@pytest.fixture
def problem():
    groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    return FairRankingProblem.from_scores(scores, groups)


@pytest.fixture
def mixed_requests(problem):
    """One request per registered algorithm family plus repeats."""
    return [
        RankingRequest("mallows", problem, params={"theta": 0.5, "n_samples": 5}),
        ("dp", problem),
        ("detconstsort", problem),
        ("ipf", problem),
        ("binary-ipf", problem),
        RankingRequest("gmm", problem, params={"thetas": 1.0, "n_samples": 3}),
        RankingRequest("mallows", problem, params={"theta": 2.0}),
    ]


class TestRegistry:
    def test_builtin_zoo_registered(self):
        assert set(algorithm_names()) == {
            "mallows", "gmm", "detconstsort", "ipf", "binary-ipf", "ilp", "dp",
        }

    def test_aliases_resolve(self):
        assert algorithm_spec("generalized-mallows").name == "gmm"
        assert algorithm_spec("GMM").name == "gmm"  # case-insensitive

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="mallows"):
            algorithm_spec("nope")

    def test_make_algorithm_builds_impl(self):
        alg = make_algorithm("mallows", theta=1.0, n_samples=15)
        assert isinstance(alg, FairRankingAlgorithm)
        assert alg.name == "mallows(theta=1, m=15)"

    def test_make_algorithm_does_not_warn(self, recwarn):
        make_algorithm("detconstsort")
        make_algorithm("dp")
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_register_custom_algorithm(self, problem):
        class Echo(FairRankingAlgorithm):
            name = "echo"
            requires_protected_attribute = False

            def rank(self, problem, seed=None):
                from repro.algorithms.base import FairRankingResult

                return FairRankingResult(
                    ranking=problem.base_ranking, algorithm=self.name
                )

        register_algorithm("echo", Echo, summary="identity")
        try:
            response = RankingEngine().rank("echo", problem)
            assert (response.ranking.order == problem.base_ranking.order).all()
        finally:
            unregister_algorithm("echo")
        with pytest.raises(KeyError):
            algorithm_spec("echo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("mallows", lambda: None)

    def test_alias_collision_leaves_no_partial_state(self):
        with pytest.raises(ValueError, match="'mallows'"):
            register_algorithm(
                "fresh-name", lambda: None, aliases=("also-fresh", "mallows")
            )
        # Neither the name nor the non-colliding alias may have landed.
        with pytest.raises(KeyError):
            algorithm_spec("fresh-name")
        with pytest.raises(KeyError):
            algorithm_spec("also-fresh")


class TestEngineConfig:
    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            EngineConfig(n_jobs=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_max_entries=0)
        with pytest.raises(ValueError):
            EngineConfig(decode_crossover=0)

    def test_overrides_compose(self):
        engine = RankingEngine(EngineConfig(n_jobs=2), cache_max_entries=7)
        assert engine.config.n_jobs == 2
        assert engine.config.cache_max_entries == 7


class TestRank:
    def test_matches_legacy_constructor_path(self, problem):
        from repro.algorithms.mallows_postprocess import MallowsFairRanking

        engine = RankingEngine()
        response = engine.rank("mallows", problem, seed=0, theta=1.0, n_samples=15)
        legacy = MallowsFairRanking(theta=1.0, n_samples=15).rank(problem, seed=0)
        assert (response.ranking.order == legacy.ranking.order).all()
        assert response.algorithm == "mallows"
        assert response.metadata["algorithm_label"] == legacy.algorithm
        assert response.seconds >= 0.0

    def test_accepts_prebuilt_request(self, problem):
        engine = RankingEngine()
        request = RankingRequest(
            "mallows", problem, params={"theta": 1.0}, seed=3, request_id="r1"
        )
        response = engine.rank(request)
        assert response.request_id == "r1"
        again = engine.rank(request)
        assert (response.ranking.order == again.ranking.order).all()

    def test_mixed_forms_rejected(self, problem):
        engine = RankingEngine()
        request = RankingRequest("dp", problem)
        with pytest.raises(TypeError):
            engine.rank(request, problem)
        with pytest.raises(TypeError):
            engine.rank("dp")

    def test_session_cache_accumulates(self, problem):
        engine = RankingEngine()
        engine.rank("ipf", problem)
        engine.rank("ipf", problem)
        stats = engine.stats()
        assert stats.cache.bounds_hits >= 1
        assert stats.requests_total == 2
        # The session owns its cache: a fresh engine starts cold.
        assert RankingEngine().stats().cache.hits == 0


class TestRankMany:
    def test_streaming_matches_serial_for_every_n_jobs(self, mixed_requests):
        engine = RankingEngine()
        serial = list(engine.rank_many(mixed_requests, seed=7))
        assert [r.index for r in serial] == list(range(len(mixed_requests)))
        digest = responses_digest(serial)
        for n_jobs in (2, 3):
            streamed = list(
                engine.rank_many(mixed_requests, seed=7, n_jobs=n_jobs)
            )
            assert responses_digest(streamed) == digest

    def test_request_seed_pins_stream(self, problem):
        engine = RankingEngine()
        pinned = RankingRequest(
            "mallows", problem, params={"theta": 0.5}, seed=123
        )
        solo = list(engine.rank_many([pinned], seed=0))[0]
        crowded = list(
            engine.rank_many([("dp", problem), pinned, ("dp", problem)], seed=99)
        )
        moved = [r for r in crowded if r.index == 1][0]
        assert (solo.ranking.order == moved.ranking.order).all()

    def test_default_request_ids_are_indices(self, problem):
        engine = RankingEngine()
        responses = sorted(
            engine.rank_many([("dp", problem), ("dp", problem)], seed=1),
            key=lambda r: r.index,
        )
        assert [r.request_id for r in responses] == [0, 1]

    def test_bad_request_type_rejected_eagerly(self, problem):
        engine = RankingEngine()
        with pytest.raises(TypeError, match="request 1"):
            engine.rank_many([("dp", problem), 42], seed=0)

    def test_unknown_algorithm_rejected_eagerly(self, problem):
        engine = RankingEngine()
        with pytest.raises(KeyError, match="unknown algorithm"):
            engine.rank_many([("nope", problem)], seed=0)

    def test_costs_learn_from_stream(self, mixed_requests, problem):
        engine = RankingEngine()
        list(engine.rank_many(mixed_requests, seed=7))
        assert engine.costs.known(("rank", "dp", problem.n_items))
        table = engine.stats().cost_table
        assert any(key.startswith("rank:dp") for key in table)

    def test_interleaved_streams_do_not_leak_session_cache(self, problem):
        """The session cache must be active only while the scheduler
        computes — never across yields: interleaved streams from two
        engines would otherwise restore in non-LIFO order and leave one
        engine's private cache installed for the rest of the thread."""
        from repro.batch.cache import DEFAULT_CACHE, active_cache

        e1, e2 = RankingEngine(), RankingEngine()
        g1 = e1.rank_many([("dp", problem)] * 2, seed=0)
        g2 = e2.rank_many([("dp", problem)] * 2, seed=0)
        next(g1)
        next(g2)
        # Suspended mid-stream: the consumer's thread sees the default.
        assert active_cache() is DEFAULT_CACHE
        list(g1)
        list(g2)
        assert active_cache() is DEFAULT_CACHE

    def test_abandoned_stream_restores_default_cache(self, problem):
        from repro.batch.cache import DEFAULT_CACHE, active_cache

        engine = RankingEngine()
        stream = engine.rank_many([("dp", problem)] * 3, seed=0)
        next(stream)
        stream.close()
        assert active_cache() is DEFAULT_CACHE

    def test_utilization_and_busy_seconds_tracked(self, mixed_requests):
        engine = RankingEngine()
        list(engine.rank_many(mixed_requests, seed=7))
        stats = engine.stats()
        assert stats.busy_seconds > 0.0
        assert stats.wall_seconds > 0.0
        assert 0.0 <= stats.utilization <= 1.0
        assert "requests" in stats.summary()


class TestSessionLifecycle:
    def test_context_manager_closes(self, problem):
        with RankingEngine() as engine:
            engine.rank("dp", problem)
        with pytest.raises(RuntimeError, match="closed"):
            engine.rank("dp", problem)
        with pytest.raises(RuntimeError, match="closed"):
            list(engine.rank_many([("dp", problem)]))

    def test_decode_crossover_scoped_to_requests(self, problem):
        from repro.mallows.sampling import decode_crossover

        before = decode_crossover()
        engine = RankingEngine(decode_crossover=64)
        engine.rank("mallows", problem, seed=0, theta=1.0)
        assert decode_crossover() == before  # restored outside the request

    def test_decode_crossover_preserves_rankings(self, problem):
        baseline = RankingEngine().rank(
            "mallows", problem, seed=5, theta=0.5, n_samples=4
        )
        tweaked = RankingEngine(decode_crossover=1).rank(
            "mallows", problem, seed=5, theta=0.5, n_samples=4
        )
        assert (baseline.ranking.order == tweaked.ranking.order).all()

    def test_algorithm_constructor_shortcut(self, problem, recwarn):
        engine = RankingEngine()
        alg = engine.algorithm("detconstsort", noise_sigma=0.0)
        assert isinstance(alg, FairRankingAlgorithm)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestCostModel:
    def test_ewma_and_weights(self):
        model = CostModel(smoothing=0.5)
        assert model.weight("k", default=3.0) == 3.0
        model.observe("k", 2.0)
        assert model.weight("k") == 2.0
        model.observe("k", 4.0)
        assert model.weight("k") == pytest.approx(3.0)
        assert model.snapshot()["k"] == (pytest.approx(3.0), 2)

    def test_none_kind_ignored(self):
        model = CostModel()
        model.observe(None, 5.0)
        assert len(model) == 0
        assert model.weight(None, default=7.0) == 7.0

    def test_reweight_only_touches_observed_kinds(self):
        from repro.batch.schedule import WorkUnit

        model = CostModel()
        model.observe(("seen",), 9.0)
        units = [
            WorkUnit(key=0, fn=len, weight=1.0, kind=("seen",)),
            WorkUnit(key=1, fn=len, weight=2.0, kind=("unseen",)),
            WorkUnit(key=2, fn=len, weight=3.0),
        ]
        reweighted = model.reweight(units)
        assert [u.weight for u in reweighted] == [9.0, 2.0, 3.0]
        assert [u.key for u in reweighted] == [0, 1, 2]

    def test_jsonable_table(self):
        model = CostModel()
        model.observe(("rank", "dp", 6), 0.5)
        table = model.to_jsonable()
        assert table == {
            "rank:dp:6": {"ewma_seconds": 0.5, "observations": 1}
        }

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CostModel(smoothing=0.0)
        with pytest.raises(ValueError):
            CostModel().observe("k", -1.0)


class TestRunAllCostFeedback:
    def test_second_run_schedules_from_measured_costs(self):
        """run_all feeds the cost table; a rerun dispatches from it and
        stays byte-identical (weights shape order, never results)."""
        from repro.experiments.runner import reports_digest, run_all

        costs = CostModel()
        first = reports_digest(run_all(fast=True, n_jobs=2, costs=costs))
        assert costs.known(("fig1", "cell"))
        assert costs.known(("table1",))
        second = reports_digest(run_all(fast=True, n_jobs=2, costs=costs))
        assert second == first

    def test_run_all_through_engine_session(self):
        from repro.experiments.runner import reports_digest, run_all

        engine = RankingEngine(n_jobs=2)
        digest = reports_digest(run_all(fast=True, engine=engine))
        assert digest == reports_digest(run_all(fast=True, n_jobs=1))
        assert engine.costs.known(("fig2", "delta"))


class TestRankManySubmit:
    """The callback drain behind the serving tier (PR 6)."""

    def test_drain_matches_rank_many_digest(self, mixed_requests):
        with RankingEngine(n_jobs=1) as engine:
            expected = responses_digest(
                engine.rank_many(mixed_requests, seed=3)
            )
            delivered = []
            count = engine.rank_many_submit(
                mixed_requests, seed=3, on_response=delivered.append
            )
        assert count == len(mixed_requests)
        assert responses_digest(delivered) == expected

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_failure_surfaces_to_exactly_the_affected_request(
        self, problem, n_jobs
    ):
        """A request raising mid-drain (theta=-1 fails inside the unit, in
        whichever process runs it) poisons only itself: batchmates keep
        streaming and the session stays fully serviceable."""
        requests = [
            RankingRequest("dp", problem, request_id="good-0"),
            RankingRequest(
                "mallows", problem, params={"theta": -1.0},
                request_id="poison",
            ),
            RankingRequest("ipf", problem, request_id="good-1"),
        ]
        responses, failures = [], []
        with RankingEngine(n_jobs=n_jobs) as engine:
            count = engine.rank_many_submit(
                requests,
                seed=0,
                n_jobs=n_jobs,
                on_response=responses.append,
                on_error=lambda i, req, err: failures.append((i, req, err)),
            )
            assert count == 3
            assert sorted(r.request_id for r in responses) == [
                "good-0", "good-1",
            ]
            ((index, request, error),) = failures
            assert index == 1
            assert request.request_id == "poison"
            assert isinstance(error, ValueError)
            # Reusable session: the failure left no poisoned state behind.
            again = list(engine.rank_many(requests[:1], seed=1))
            assert again[0].request_id == "good-0"

    def test_without_on_error_first_failure_raises(self, problem):
        requests = [
            RankingRequest("mallows", problem, params={"theta": -1.0}),
            RankingRequest("dp", problem),
        ]
        with RankingEngine(n_jobs=1) as engine:
            with pytest.raises(ValueError):
                engine.rank_many_submit(
                    requests, seed=0, on_response=lambda r: None
                )
            # Inline drain aborts at the failure: the dp unit never ran...
            assert engine.stats().requests_total == 0
            # ...and the session still serves afterwards.
            assert list(engine.rank_many(requests[1:], seed=0))

    def test_unpicklable_failure_downgraded_not_fatal(self, problem):
        """An exception that cannot cross a process boundary must come
        back as a picklable RuntimeError, not kill the stream."""

        class Cursed(FairRankingAlgorithm):
            name = "cursed"
            requires_protected_attribute = False

            def rank(self, problem, seed=None):
                err = ValueError("original message")
                err.payload = lambda: None  # unpicklable attribute
                raise err

        register_algorithm("cursed", Cursed, summary="raises unpicklable")
        try:
            failures = []
            with RankingEngine(n_jobs=1) as engine:
                engine.rank_many_submit(
                    [RankingRequest("cursed", problem)],
                    seed=0,
                    on_response=lambda r: None,
                    on_error=lambda i, req, err: failures.append(err),
                )
            ((error,),) = (failures,)
            assert isinstance(error, RuntimeError)
            assert "original message" in str(error)
            import pickle as _pickle

            _pickle.dumps(error)  # guaranteed marshallable
        finally:
            unregister_algorithm("cursed")

    def test_costs_learned_only_from_successes(self, problem):
        requests = [
            RankingRequest("mallows", problem, params={"theta": -1.0}),
            RankingRequest("dp", problem),
        ]
        with RankingEngine(n_jobs=1) as engine:
            engine.rank_many_submit(
                requests,
                seed=0,
                on_response=lambda r: None,
                on_error=lambda i, req, err: None,
            )
            assert engine.costs.known(("rank", "dp", problem.n_items))
            assert not engine.costs.known(
                ("rank", "mallows", problem.n_items)
            )


class TestCostModelMerge:
    """The (previously dead) merge path and its JSON round-trip (PR 6)."""

    def test_snapshot_merge_round_trip(self):
        source = CostModel()
        source.observe(("rank", "dp", 150), 0.25)
        source.observe(("rank", "mallows", 40), 1.5)
        target = CostModel()
        assert target.merge(source.snapshot()) == 2
        assert target.weight(("rank", "dp", 150)) == pytest.approx(0.25)
        assert target.snapshot() == source.snapshot()

    def test_jsonable_round_trip_restores_tuple_kinds(self):
        import json as _json

        source = CostModel()
        source.observe(("rank", "dp", 150), 0.25)
        source.observe(("rank", "gmm", 40), 0.75)
        wire = _json.loads(_json.dumps(source.to_jsonable()))  # real JSON
        target = CostModel()
        assert target.merge_jsonable(wire) == 2
        # Kinds come back as the original tuples, ints included.
        assert target.known(("rank", "dp", 150))
        assert target.weight(("rank", "gmm", 40)) == pytest.approx(0.75)

    def test_zero_count_entry_is_skipped_not_divided(self):
        target = CostModel()
        imported = target.merge(
            {
                ("rank", "dp", 6): (0.5, 0),       # no measurement behind it
                ("rank", "ipf", 6): (0.2, 3),      # fine
                ("rank", "gmm", 6): (float("nan"), 2),   # junk EWMA
                ("rank", "mallows", 6): (-1.0, 2),       # negative EWMA
            }
        )
        assert imported == 1
        assert target.known(("rank", "ipf", 6))
        assert not target.known(("rank", "dp", 6))
        assert len(target) == 1

    def test_merge_never_clobbers_learned_ewma(self):
        target = CostModel()
        target.observe(("rank", "dp", 6), 0.1)
        assert target.merge({("rank", "dp", 6): (9.9, 100)}) == 0
        assert target.weight(("rank", "dp", 6)) == pytest.approx(0.1)

    def test_merge_jsonable_skips_malformed_rows(self):
        target = CostModel()
        imported = target.merge_jsonable(
            {
                "rank:dp:6": {"ewma_seconds": 0.3, "observations": 2},
                "rank:ipf:6": {"observations": 2},          # missing EWMA
                "rank:gmm:6": {"ewma_seconds": "junk", "observations": 2},
            }
        )
        assert imported == 1
        assert target.known(("rank", "dp", 6))

    def test_kind_label_round_trip(self):
        from repro.engine import kind_from_label, kind_label

        for kind in [("rank", "dp", 150), ("table1",), ("fig1", "cell")]:
            assert kind_from_label(kind_label(kind)) == kind

    def test_load_bench_cost_tables_most_observations_wins(self, tmp_path):
        from repro.engine import load_bench_cost_tables

        a = tmp_path / "BENCH_A.json"
        b = tmp_path / "BENCH_B.json"
        a.write_text(json.dumps({
            "reports": [{"name": "x", "metrics": {"cost_table": {
                "rank:dp:6": {"ewma_seconds": 0.1, "observations": 2},
                "rank:ipf:6": {"ewma_seconds": 0.4, "observations": 7},
            }}}],
        }))
        b.write_text(json.dumps({
            "reports": [
                {"name": "y", "metrics": {"cost_table": {
                    "rank:dp:6": {"ewma_seconds": 0.3, "observations": 9},
                }}},
                {"name": "z", "metrics": {}},  # no table: contributes nothing
            ],
        }))
        table = load_bench_cost_tables(a, b)
        assert table["rank:dp:6"]["ewma_seconds"] == pytest.approx(0.3)
        assert table["rank:ipf:6"]["observations"] == 7
        with pytest.raises(FileNotFoundError):
            load_bench_cost_tables(tmp_path / "missing.json")

    def test_warm_start_shapes_first_batch_dispatch_weights(self, problem):
        """A warm-started table must reach the *first* batch's WorkUnit
        weights — previously the merge existed but nothing called it."""
        from repro.engine.core import _rank_unit

        kind = ("rank", "dp", problem.n_items)
        table = {"rank:dp:6": {"ewma_seconds": 0.33, "observations": 4}}
        with RankingEngine(n_jobs=1) as engine:
            assert engine.warm_start_costs(table) == 1
            units = engine._build_units(
                [RankingRequest("dp", problem)], seed=0, fn=_rank_unit
            )
            assert units[0].weight == pytest.approx(0.33)
            assert units[0].kind == kind
        with RankingEngine(n_jobs=1) as cold:
            units = cold._build_units(
                [RankingRequest("dp", problem)], seed=0, fn=_rank_unit
            )
            assert units[0].weight == 1.0  # static guess without warmth

    def test_warm_start_from_path_and_iterable(self, tmp_path):
        payload = {"reports": [{"name": "x", "metrics": {"cost_table": {
            "rank:dp:6": {"ewma_seconds": 0.2, "observations": 3},
        }}}]}
        path = tmp_path / "BENCH_T.json"
        path.write_text(json.dumps(payload))
        with RankingEngine(n_jobs=1) as engine:
            assert engine.warm_start_costs(path) == 1
        with RankingEngine(n_jobs=1) as engine:
            assert engine.warm_start_costs([str(path), str(path)]) == 1

    def test_warm_start_never_overrides_measured_session(self, problem):
        with RankingEngine(n_jobs=1) as engine:
            list(engine.rank_many([("dp", problem)], seed=0))
            measured = engine.costs.weight(("rank", "dp", problem.n_items))
            assert engine.warm_start_costs(
                {"rank:dp:6": {"ewma_seconds": 99.0, "observations": 1}}
            ) == 0
            assert engine.costs.weight(
                ("rank", "dp", problem.n_items)
            ) == pytest.approx(measured)
