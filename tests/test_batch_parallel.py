"""Equivalence tests for the multi-core fan-out (both sharding modes).

The contract of :mod:`repro.batch.parallel`: for a fixed seed, every
``n_jobs`` value produces byte-identical samples and scores, and leaves a
passed-in generator in exactly the state the single-process path would —
so whole experiments are reproducible independently of the worker count.
The same holds for the trial-granular pool (:func:`repro.batch.run_trials`)
that covers the German Credit panels and Fig. 2.
"""

import warnings

import numpy as np
import pytest

from repro.batch import (
    effective_n_jobs,
    in_worker,
    mallows_sample_and_score,
    reset_warnings,
    resolve_n_jobs,
    run_trials,
    shard_row_ranges,
)
from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import run_fig1
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.fig34_tradeoff import run_fig34
from repro.experiments.german_credit_exp import run_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import random_ranking

N = 15
M = 700  # above MIN_ROWS_PER_JOB * 2, so two shards really fan out
THETA = 0.7


@pytest.fixture(scope="module")
def workload():
    center = random_ranking(N, seed=3)
    groups = GroupAssignment.from_indices(np.arange(N) % 2)
    constraints = FairnessConstraints.proportional(groups)
    scores = np.linspace(2.0, 0.1, N)
    return center, groups, constraints, scores


class TestSharding:
    def test_shard_row_ranges_cover_and_balance(self):
        assert shard_row_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_row_ranges(2, 5) == [(0, 1), (1, 2)]  # empties dropped
        assert shard_row_ranges(0, 4) == []
        with pytest.raises(ValueError):
            shard_row_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_row_ranges(5, 0)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)

    def test_effective_n_jobs_in_parent(self):
        assert not in_worker()
        assert effective_n_jobs(3) == 3
        assert effective_n_jobs(-1) == resolve_n_jobs(-1)
        with pytest.raises(ValueError):
            effective_n_jobs(0)
        with pytest.raises(ValueError):
            effective_n_jobs(-2)

    def test_effective_n_jobs_clamps_inside_worker(self, monkeypatch):
        import repro.batch.parallel as parallel

        monkeypatch.setattr(parallel, "_IN_WORKER", True)
        assert parallel.in_worker()
        assert effective_n_jobs(8) == 1
        assert effective_n_jobs(-1) == 1
        assert effective_n_jobs(1) == 1
        with pytest.raises(ValueError):
            effective_n_jobs(0)
        with pytest.raises(ValueError):
            effective_n_jobs(-2)

    def test_stream_slice_matches_full_draw(self):
        """The invariant the sharder is built on: an advanced PCG64 clone
        reproduces the trailing rows of one big row-major draw."""
        rng = np.random.default_rng(5)
        state = rng.bit_generator.state
        full = rng.random((10, 7))
        clone = np.random.PCG64()
        clone.state = state
        clone.advance(4 * 7)
        part = np.random.Generator(clone).random((6, 7))
        assert np.array_equal(full[4:], part)


class TestPipelineEquivalence:
    def test_njobs_byte_identical(self, workload):
        center, groups, constraints, scores = workload
        results = [
            mallows_sample_and_score(
                center,
                THETA,
                M,
                groups=groups,
                constraints=constraints,
                scores=scores,
                seed=2024,
                n_jobs=n_jobs,
                return_orders=True,
            )
            for n_jobs in (1, 2, 3)
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].orders, other.orders)
            assert np.array_equal(
                results[0].infeasible_index, other.infeasible_index
            )
            assert np.array_equal(results[0].ndcg, other.ndcg)

    def test_matches_legacy_single_process_path(self, workload):
        """n_jobs > 1 reproduces the plain sample_mallows_batch draws."""
        center, groups, constraints, _ = workload
        legacy = sample_mallows_batch(center, THETA, M, seed=99)
        sharded = mallows_sample_and_score(
            center,
            THETA,
            M,
            groups=groups,
            constraints=constraints,
            seed=99,
            n_jobs=2,
            return_orders=True,
        )
        assert np.array_equal(legacy, sharded.orders)

    def test_parent_generator_end_state(self, workload):
        """After a sharded run the caller's generator continues exactly
        where the single-process path would have left it."""
        center, groups, constraints, _ = workload
        g1 = np.random.default_rng(41)
        g2 = np.random.default_rng(41)
        a = mallows_sample_and_score(
            center, THETA, M, groups=groups, constraints=constraints,
            seed=g1, n_jobs=1,
        )
        b = mallows_sample_and_score(
            center, THETA, M, groups=groups, constraints=constraints,
            seed=g2, n_jobs=2,
        )
        assert np.array_equal(a.infeasible_index, b.infeasible_index)
        assert np.array_equal(g1.random(20), g2.random(20))

    def test_non_advanceable_bit_generator_fallback(self, workload):
        """MT19937 cannot advance; the central-draw fallback must still be
        byte-identical across n_jobs."""
        center, groups, constraints, _ = workload
        a = mallows_sample_and_score(
            center, THETA, M, groups=groups, constraints=constraints,
            seed=np.random.Generator(np.random.MT19937(7)), n_jobs=1,
            return_orders=True,
        )
        b = mallows_sample_and_score(
            center, THETA, M, groups=groups, constraints=constraints,
            seed=np.random.Generator(np.random.MT19937(7)), n_jobs=2,
            return_orders=True,
        )
        assert np.array_equal(a.orders, b.orders)
        assert np.array_equal(a.infeasible_index, b.infeasible_index)

    def test_optional_outputs(self, workload):
        center, groups, constraints, scores = workload
        bare = mallows_sample_and_score(center, THETA, 50, seed=1)
        assert bare.infeasible_index is None and bare.ndcg is None
        assert bare.orders is None
        with pytest.raises(ValueError):
            mallows_sample_and_score(center, THETA, 50, groups=groups, seed=1)
        with pytest.raises(ValueError):
            mallows_sample_and_score(
                center, THETA, 50, constraints=constraints, seed=1
            )

    def test_small_batch_warns_once_and_runs_inline(self, workload):
        center, groups, constraints, _ = workload
        reset_warnings()
        with pytest.warns(RuntimeWarning, match="single-process"):
            out = mallows_sample_and_score(
                center, THETA, 50, groups=groups, constraints=constraints,
                seed=3, n_jobs=4,
            )
        assert out.infeasible_index.shape == (50,)
        # Identical to the plain single-process run, and warned only once.
        ref = mallows_sample_and_score(
            center, THETA, 50, groups=groups, constraints=constraints,
            seed=3, n_jobs=1,
        )
        assert np.array_equal(out.infeasible_index, ref.infeasible_index)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            mallows_sample_and_score(
                center, THETA, 50, groups=groups, constraints=constraints,
                seed=4, n_jobs=4,
            )
        # Resetting the registry re-arms the advisory.
        reset_warnings()
        with pytest.warns(RuntimeWarning, match="single-process"):
            mallows_sample_and_score(
                center, THETA, 50, groups=groups, constraints=constraints,
                seed=5, n_jobs=4,
            )

    def test_empty_batch(self, workload):
        center, groups, constraints, scores = workload
        out = mallows_sample_and_score(
            center, THETA, 0, groups=groups, constraints=constraints,
            scores=scores, seed=0, n_jobs=2, return_orders=True,
        )
        assert out.orders.shape == (0, N)
        assert out.infeasible_index.shape == (0,)
        assert out.ndcg.shape == (0,)


def _square_trial(trial_index, rng):
    """Module-level (hence picklable) trial: index² plus one stream draw."""
    return trial_index**2 + float(rng.random())


def _payload_trial(trial_index, rng, offset, scale):
    return offset + scale * trial_index + float(rng.random())


def _stream_probe_trial(trial_index, rng):
    """Returns the trial's first three uniforms — the raw stream identity."""
    return rng.random(3).tolist()


def _process_probe_trial(trial_index, rng):
    """Returns which process ran the trial and what it may fan out to."""
    import os

    from repro.batch.parallel import effective_n_jobs, in_worker

    return os.getpid(), in_worker(), effective_n_jobs(4)


class TestTrialPool:
    def test_results_in_trial_order_with_payload(self):
        out = run_trials(_payload_trial, 5, seed=0, n_jobs=1, payload=(100.0, 10.0))
        assert [int(x) for x in out] == [100, 110, 120, 130, 140]

    def test_byte_identical_across_n_jobs(self):
        results = [
            run_trials(_stream_probe_trial, 9, seed=42, n_jobs=n_jobs)
            for n_jobs in (1, 2, 3)
        ]
        assert results[1] == results[0]
        assert results[2] == results[0]

    def test_matches_spawned_generator_streams(self):
        """Trial t's stream is exactly spawn_generators(seed, n)[t]'s."""
        from repro.utils.rng import spawn_generators

        out = run_trials(_stream_probe_trial, 4, seed=7, n_jobs=2)
        expected = [g.random(3).tolist() for g in spawn_generators(7, 4)]
        assert out == expected

    def test_generator_seed_consumed_consistently(self):
        """A passed-in generator is consumed identically for every n_jobs,
        so downstream draws from the same stream are unaffected."""
        g1 = np.random.default_rng(3)
        g2 = np.random.default_rng(3)
        a = run_trials(_square_trial, 4, seed=g1, n_jobs=1)
        b = run_trials(_square_trial, 4, seed=g2, n_jobs=2)
        assert a == b
        assert np.array_equal(g1.random(5), g2.random(5))

    def test_zero_trials(self):
        assert run_trials(_square_trial, 0, seed=0, n_jobs=4) == []

    def test_negative_trials_raises(self):
        with pytest.raises(ValueError):
            run_trials(_square_trial, -1, seed=0)

    def test_invalid_n_jobs_raises(self):
        with pytest.raises(ValueError):
            run_trials(_square_trial, 3, seed=0, n_jobs=0)

    def test_fewer_trials_than_workers_clamps_instead_of_inlining(self):
        """Regression for the inline fallback: n_trials < n_jobs must fan
        out on min(n_jobs, n_trials) workers, silently and byte-identically
        (heavy few-repeat loops were losing all parallelism)."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = run_trials(_process_probe_trial, 2, seed=5, n_jobs=3)
        import os

        pids = {pid for pid, _, _ in out}
        assert os.getpid() not in pids  # really ran in pool children
        assert all(flag for _, flag, _ in out)  # marked as workers
        assert all(jobs == 1 for _, _, jobs in out)  # no nested pools

    def test_clamped_fanout_matches_serial_streams(self):
        a = run_trials(_stream_probe_trial, 3, seed=5, n_jobs=8)
        b = run_trials(_stream_probe_trial, 3, seed=5, n_jobs=1)
        assert a == b

    def test_single_trial_warns_once_and_runs_inline(self):
        reset_warnings()
        with pytest.warns(RuntimeWarning, match="inline"):
            out = run_trials(_square_trial, 1, seed=5, n_jobs=8)
        assert out == run_trials(_square_trial, 1, seed=5, n_jobs=1)
        # Warned only once per registry reset.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_trials(_square_trial, 1, seed=6, n_jobs=8)


class TestExperimentEquivalence:
    def test_fig1_output_independent_of_njobs(self):
        base = dict(
            target_iis=(0, 8), thetas=(0.5,), n_samples=300,
            n_bootstrap=60, seed=11,
        )
        a = run_fig1(Fig1Config(**base, n_jobs=1))
        b = run_fig1(Fig1Config(**base, n_jobs=2))
        assert a.central_iis == b.central_iis
        for ii in a.mean_sample_ii:
            for theta in a.mean_sample_ii[ii]:
                ra = a.mean_sample_ii[ii][theta]
                rb = b.mean_sample_ii[ii][theta]
                assert (ra.estimate, ra.low, ra.high) == (
                    rb.estimate, rb.low, rb.high,
                )

    def test_fig34_output_independent_of_njobs(self):
        base = dict(
            deltas=(0.5,), thetas=(0.5,), n_trials=2,
            samples_per_trial=300, n_bootstrap=60, seed=11,
        )
        a = run_fig34(Fig34Config(**base, n_jobs=1))
        b = run_fig34(Fig34Config(**base, n_jobs=2))
        assert a.central_ii == b.central_ii
        assert a.to_text_fig3() == b.to_text_fig3()
        assert a.to_text_fig4() == b.to_text_fig4()

    def test_fig2_output_independent_of_njobs(self):
        base = dict(deltas=(0.0, 0.6, 1.0), n_trials=12, n_bootstrap=60, seed=11)
        results = [run_fig2(Fig2Config(**base, n_jobs=j)) for j in (1, 2, 3)]
        for other in results[1:]:
            assert other.to_text() == results[0].to_text()
            for delta in results[0].central_ii:
                ra = results[0].central_ii[delta]
                rb = other.central_ii[delta]
                assert (ra.estimate, ra.low, ra.high) == (
                    rb.estimate, rb.low, rb.high,
                )

    def test_german_credit_output_independent_of_njobs(self):
        data = synthesize_german_credit(seed=0)
        base = dict(sizes=(10, 20), n_repeats=5, n_bootstrap=60, seed=11)
        results = [
            run_german_credit(GermanCreditConfig(**base, n_jobs=j), data=data)
            for j in (1, 2, 3)
        ]
        for other in results[1:]:
            assert other.to_text_fig5() == results[0].to_text_fig5()
            assert other.to_text_fig6() == results[0].to_text_fig6()
            assert other.to_text_fig7() == results[0].to_text_fig7()
            for alg in results[0].ndcg:
                for size in results[0].ndcg[alg]:
                    ra = results[0].ndcg[alg][size]
                    rb = other.ndcg[alg][size]
                    assert (ra.estimate, ra.low, ra.high) == (
                        rb.estimate, rb.low, rb.high,
                    )


class TestCliWiring:
    def test_jobs_flag_parses(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["fig1", "--jobs", "4"]).jobs == 4
        assert parser.parse_args(["fig3"]).jobs == 1
        assert parser.parse_args(["all", "--fast", "--jobs", "-1"]).jobs == -1

    def test_jobs_flag_covers_trial_sharded_commands(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["fig2", "--jobs", "3"]).jobs == 3
        assert parser.parse_args(["fig2"]).jobs == 1
        args = parser.parse_args(["fig5", "--theta", "1", "--jobs", "2"])
        assert args.jobs == 2 and args.theta == 1.0
        assert parser.parse_args(["fig7"]).jobs == 1
