"""Exactness of the batched metric kernels added for the remaining scalar
metrics: footrule, Spearman, Ulam, Cayley, Hamming, weighted Kendall tau and
per-group exposure.

Every kernel must produce the *same* integers/floats as its scalar
counterpart — the property tests compare with exact equality, never with a
tolerance — across sizes, batch shapes, chunk boundaries, and both raw-array
and :class:`BatchRankings` inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.batch.kernels as kernels
from repro.batch import (
    BatchRankings,
    batch_cayley,
    batch_footrule,
    batch_group_exposures,
    batch_hamming,
    batch_spearman,
    batch_ulam,
    batch_weighted_kendall_tau,
)
from repro.exceptions import LengthMismatchError
from repro.fairness.exposure import group_exposures
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import (
    cayley_distance,
    footrule_distance,
    hamming_distance,
    spearman_distance,
    ulam_distance,
    weighted_kendall_tau,
)
from repro.rankings.permutation import Ranking, random_ranking

#: (batched kernel, scalar reference) pairs for the plain distance metrics.
DISTANCE_KERNELS = [
    (batch_footrule, footrule_distance),
    (batch_spearman, spearman_distance),
    (batch_hamming, hamming_distance),
    (batch_cayley, cayley_distance),
    (batch_ulam, ulam_distance),
]


@st.composite
def batch_and_reference(draw):
    """A random batch (possibly empty) plus a reference of the same length."""
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=0, max_value=8))
    ref = np.array(draw(st.permutations(list(range(n)))), dtype=np.int64)
    rows = [draw(st.permutations(list(range(n)))) for _ in range(m)]
    orders = np.array(rows, dtype=np.int64).reshape(m, n)
    return orders, ref


@settings(max_examples=80, deadline=None)
@given(batch_and_reference())
def test_distance_kernels_match_scalar(case):
    orders, ref = case
    reference = Ranking(ref)
    for batch_fn, scalar_fn in DISTANCE_KERNELS:
        got = batch_fn(orders, reference)
        expected = np.array(
            [scalar_fn(Ranking(row), reference) for row in orders], dtype=np.int64
        )
        assert got.dtype == np.int64
        assert np.array_equal(got, expected), batch_fn.__name__


@settings(max_examples=60, deadline=None)
@given(batch_and_reference())
def test_weighted_kendall_tau_matches_scalar(case):
    orders, ref = case
    reference = Ranking(ref)
    got = batch_weighted_kendall_tau(orders, reference)
    expected = np.array(
        [weighted_kendall_tau(Ranking(row), reference) for row in orders]
    )
    # Bit-identical floats, not approximately equal.
    assert np.array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(batch_and_reference(), st.integers(min_value=0, max_value=1 << 30))
def test_weighted_kendall_tau_custom_weights(case, wseed):
    orders, ref = case
    n = ref.size
    w = np.random.default_rng(wseed).random(n)
    reference = Ranking(ref)
    got = batch_weighted_kendall_tau(orders, reference, weights=w)
    expected = np.array(
        [weighted_kendall_tau(Ranking(row), reference, weights=w) for row in orders]
    )
    assert np.array_equal(got, expected)


@st.composite
def batch_and_groups(draw):
    """A random batch plus a group assignment (every group non-empty)."""
    n = draw(st.integers(min_value=2, max_value=12))
    g = draw(st.integers(min_value=1, max_value=min(4, n)))
    labels = list(range(g)) + [
        draw(st.integers(min_value=0, max_value=g - 1)) for _ in range(n - g)
    ]
    m = draw(st.integers(min_value=0, max_value=8))
    rows = [draw(st.permutations(list(range(n)))) for _ in range(m)]
    orders = np.array(rows, dtype=np.int64).reshape(m, n)
    groups = GroupAssignment.from_indices(np.array(labels, dtype=np.int64), g)
    k = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n)))
    return orders, groups, k


@settings(max_examples=80, deadline=None)
@given(batch_and_groups())
def test_group_exposures_match_scalar(case):
    orders, groups, k = case
    got = batch_group_exposures(orders, groups, k=k)
    expected = np.array(
        [group_exposures(Ranking(row), groups, k=k) for row in orders]
    ).reshape(orders.shape[0], groups.n_groups)
    # The kernel accumulates in the scalar np.add.at order: bit-identical.
    assert np.array_equal(got, expected)


def test_group_exposures_empty_group_zero():
    ga = GroupAssignment.from_indices(np.array([0, 0, 0]), n_groups=2)
    out = batch_group_exposures(np.array([[0, 1, 2], [2, 1, 0]]), ga)
    assert np.all(out[:, 1] == 0.0)


def test_group_exposures_rejects_bad_k():
    ga = GroupAssignment.from_indices(np.array([0, 1, 0]))
    orders = np.array([[0, 1, 2]])
    with pytest.raises(ValueError):
        batch_group_exposures(orders, ga, k=4)
    with pytest.raises(ValueError):
        batch_group_exposures(orders, ga, k=-1)


def test_kernels_accept_batchrankings_and_raw_reference():
    rng = np.random.default_rng(0)
    n = 9
    orders = np.stack([rng.permutation(n) for _ in range(25)])
    batch = BatchRankings(orders)
    ref = random_ranking(n, seed=2)
    for batch_fn, _scalar_fn in DISTANCE_KERNELS:
        assert np.array_equal(
            batch_fn(batch, ref), batch_fn(orders, ref.order.tolist())
        )


@pytest.mark.parametrize(
    "batch_fn",
    [fn for fn, _ in DISTANCE_KERNELS] + [batch_weighted_kendall_tau],
)
def test_distance_kernels_reject_length_mismatch(batch_fn):
    orders = np.array([[0, 1, 2], [2, 1, 0]])
    with pytest.raises(LengthMismatchError):
        batch_fn(orders, Ranking([0, 1, 2, 3]))


def test_group_exposures_reject_length_mismatch():
    ga = GroupAssignment.from_indices(np.array([0, 1, 0, 1]))
    with pytest.raises(LengthMismatchError):
        batch_group_exposures(np.array([[0, 1, 2]]), ga)


def test_kernels_chunking_is_seamless(monkeypatch):
    """Shrinking the chunk budgets to force many row chunks must not change
    any result."""
    rng = np.random.default_rng(7)
    n = 11
    orders = np.stack([rng.permutation(n) for _ in range(64)])
    ref = random_ranking(n, seed=5)
    ga = GroupAssignment.from_indices(np.arange(n) % 3)
    baseline = {
        fn.__name__: fn(orders, ref) for fn, _ in DISTANCE_KERNELS
    }
    baseline["wkt"] = batch_weighted_kendall_tau(orders, ref)
    baseline["exposure"] = batch_group_exposures(orders, ga)
    monkeypatch.setattr(kernels, "_PREFIX_BUDGET", 1)
    monkeypatch.setattr(kernels, "_PAIR_BUDGET", 1)
    for fn, _ in DISTANCE_KERNELS:
        assert np.array_equal(fn(orders, ref), baseline[fn.__name__])
    assert np.array_equal(batch_weighted_kendall_tau(orders, ref), baseline["wkt"])
    assert np.array_equal(batch_group_exposures(orders, ga), baseline["exposure"])


def test_cayley_large_n_matches_scalar():
    """Pointer-doubling cycle counting across many doubling rounds."""
    rng = np.random.default_rng(11)
    n = 200
    orders = np.stack([rng.permutation(n) for _ in range(20)])
    ref = random_ranking(n, seed=1)
    expected = np.array([cayley_distance(Ranking(row), ref) for row in orders])
    assert np.array_equal(batch_cayley(orders, ref), expected)


def test_ulam_large_n_matches_scalar():
    rng = np.random.default_rng(13)
    n = 150
    orders = np.stack([rng.permutation(n) for _ in range(15)])
    ref = random_ranking(n, seed=4)
    expected = np.array([ulam_distance(Ranking(row), ref) for row in orders])
    assert np.array_equal(batch_ulam(orders, ref), expected)
