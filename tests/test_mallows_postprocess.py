"""Tests for Algorithm 1 (Mallows post-processing)."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.criteria import (
    MaxNdcgCriterion,
    MinInfeasibleIndexCriterion,
    MinKendallTauCriterion,
)
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.rankings.quality import ndcg


@pytest.fixture
def segregated_problem():
    """Group 1 strictly outscores group 0 — maximally unfair centre."""
    ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
    scores = np.concatenate([np.linspace(0.4, 0.1, 5), np.linspace(1.0, 0.6, 5)])
    return FairRankingProblem.from_scores(scores, ga)


class TestBasics:
    def test_returns_valid_ranking(self, segregated_problem):
        result = MallowsFairRanking(1.0, 5).rank(segregated_problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(10))

    def test_reproducible(self, segregated_problem):
        a = MallowsFairRanking(1.0, 5).rank(segregated_problem, seed=3)
        b = MallowsFairRanking(1.0, 5).rank(segregated_problem, seed=3)
        assert a.ranking == b.ranking

    def test_metadata(self, segregated_problem):
        result = MallowsFairRanking(0.5, 7).rank(segregated_problem, seed=0)
        assert result.metadata["theta"] == 0.5
        assert result.metadata["n_samples"] == 7
        assert 0 <= result.metadata["selected_index"] < 7

    def test_single_sample_skips_criterion(self, segregated_problem):
        result = MallowsFairRanking(1.0, 1).rank(segregated_problem, seed=0)
        assert result.metadata["criterion"] == "first-sample"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MallowsFairRanking(-0.5)
        with pytest.raises(ValueError):
            MallowsFairRanking(1.0, 0)

    def test_does_not_require_attribute(self):
        alg = MallowsFairRanking(1.0)
        assert alg.requires_protected_attribute is False

    def test_works_without_groups(self):
        # The whole point: the method runs with no group information at all.
        scores = np.linspace(1.0, 0.1, 8)
        problem = FairRankingProblem.from_scores(scores)
        result = MallowsFairRanking(1.0, 5).rank(problem, seed=0)
        assert len(result.ranking) == 8


class TestBehaviour:
    def test_high_theta_stays_near_center(self, segregated_problem):
        result = MallowsFairRanking(30.0, 1).rank(segregated_problem, seed=0)
        assert result.ranking == segregated_problem.base_ranking

    def test_low_theta_repairs_unfair_center(self, segregated_problem):
        ga = segregated_problem.groups
        fc = segregated_problem.constraints
        base_ii = infeasible_index(segregated_problem.base_ranking, ga, fc)
        iis = []
        for seed in range(30):
            r = MallowsFairRanking(0.3, 1).rank(segregated_problem, seed=seed)
            iis.append(infeasible_index(r.ranking, ga, fc))
        assert np.mean(iis) < base_ii

    def test_best_of_m_improves_ndcg(self, segregated_problem):
        scores = segregated_problem.scores
        one = [
            ndcg(
                MallowsFairRanking(0.5, 1).rank(segregated_problem, seed=s).ranking,
                scores,
            )
            for s in range(20)
        ]
        best15 = [
            ndcg(
                MallowsFairRanking(0.5, 15).rank(segregated_problem, seed=s).ranking,
                scores,
            )
            for s in range(20)
        ]
        assert np.mean(best15) > np.mean(one)

    def test_criterion_respected_kt(self, segregated_problem):
        alg = MallowsFairRanking(0.5, 10, criterion=MinKendallTauCriterion())
        result = alg.rank(segregated_problem, seed=4)
        assert result.metadata["criterion"] == "min-kendall-tau"

    def test_ii_criterion_yields_fairer_selection(self, segregated_problem):
        ga = segregated_problem.groups
        fc = segregated_problem.constraints
        ii_sel, ndcg_sel = [], []
        for s in range(15):
            ri = MallowsFairRanking(
                0.5, 15, criterion=MinInfeasibleIndexCriterion()
            ).rank(segregated_problem, seed=s)
            rn = MallowsFairRanking(
                0.5, 15, criterion=MaxNdcgCriterion()
            ).rank(segregated_problem, seed=s)
            ii_sel.append(infeasible_index(ri.ranking, ga, fc))
            ndcg_sel.append(infeasible_index(rn.ranking, ga, fc))
        assert np.mean(ii_sel) <= np.mean(ndcg_sel)

    def test_base_ranking_preserved_items(self, segregated_problem):
        result = MallowsFairRanking(1.0, 3).rank(segregated_problem, seed=0)
        assert set(result.ranking.order.tolist()) == set(
            segregated_problem.base_ranking.order.tolist()
        )
