"""Statistical validation of the batched engine against exact references.

Two anchors:

* the batch sampler's *first-position* empirical marginals must match the
  exact Mallows marginals of :func:`repro.mallows.marginals.position_marginals`
  within a chi-square tolerance;
* batched Kendall tau must agree exactly with the ``O(n log n)`` scalar
  implementation on random permutation pairs (it is the same integer, not an
  approximation).
"""

import numpy as np
import pytest
from scipy import stats

from repro.batch import batch_kendall_tau, batch_kendall_tau_pairwise
from repro.mallows.marginals import position_marginals
from repro.mallows.sampling import sample_mallows_batch, sample_mallows_rankings
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, random_ranking


@pytest.mark.parametrize("theta", [0.0, 0.3, 1.0])
def test_first_position_marginals_chi_square(theta):
    """Which centre rank lands on top follows the exact RIM marginal."""
    n, m = 8, 20000
    center = random_ranking(n, seed=17)
    orders = sample_mallows_batch(center, theta, m, seed=99)
    # Centre rank of the item each sample puts at position 0.
    top_rank = center.positions[orders[:, 0]]
    observed = np.bincount(top_rank, minlength=n)
    expected = position_marginals(n, theta)[:, 0] * m
    assert expected.min() > 5  # chi-square applicability
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    # 99.9% quantile: a false alarm every ~1000 runs, but a sampler whose
    # top-position law drifts fails deterministically under this seed.
    assert chi2 < stats.chi2.ppf(0.999, df=n - 1)


def test_last_position_marginals_chi_square():
    """Same anchor at the other extreme of the ranking."""
    n, m, theta = 8, 20000, 0.7
    center = random_ranking(n, seed=23)
    orders = sample_mallows_batch(center, theta, m, seed=123)
    bottom_rank = center.positions[orders[:, -1]]
    observed = np.bincount(bottom_rank, minlength=n)
    expected = position_marginals(n, theta)[:, -1] * m
    assert expected.min() > 5
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    assert chi2 < stats.chi2.ppf(0.999, df=n - 1)


@pytest.mark.parametrize("n", [2, 7, 40, 200])
def test_batch_kendall_tau_agrees_with_scalar_on_random_pairs(n):
    rng = np.random.default_rng(n)
    m = 50
    batch = sample_mallows_rankings(random_ranking(n, seed=1), 0.2, m, seed=rng)
    ref = random_ranking(n, seed=2)
    got = batch_kendall_tau(batch, ref)
    assert got.tolist() == [
        kendall_tau_distance(batch[s], ref) for s in range(m)
    ]
    other = np.stack([rng.permutation(n) for _ in range(m)])
    got_pair = batch_kendall_tau_pairwise(batch, other)
    assert got_pair.tolist() == [
        kendall_tau_distance(batch[s], Ranking(other[s])) for s in range(m)
    ]


def test_batch_sampler_mean_distance_matches_model():
    """Sanity: the batched pipeline (sampler + KT kernel) reproduces the
    closed-form expected Kendall distance."""
    from repro.mallows.model import expected_kendall_tau

    n, theta, m = 12, 0.8, 4000
    center = random_ranking(n, seed=9)
    batch = sample_mallows_rankings(center, theta, m, seed=5)
    dists = batch_kendall_tau(batch, center)
    assert dists.mean() == pytest.approx(expected_kendall_tau(n, theta), abs=0.35)
