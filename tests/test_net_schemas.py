"""Round-trip and strictness tests for the v1 JSON wire schemas.

The schemas' whole job is fidelity: a request encoded, shipped, and
decoded must rank *identically* to the original — seeds included — or
the HTTP tier's byte-identical-digest contract silently dies.  So the
core tests here are semantic round-trips (decoded SeedSequences produce
the same generator stream; decoded requests produce the same digest
under a serial engine), plus the strict-rejection surface that backs
every 400.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import RankingEngine, responses_digest
from repro.engine.core import RankingRequest
from repro.net.schemas import (
    SCHEMA_VERSION,
    WireFormatError,
    decode_problem,
    decode_rank_many_request,
    decode_rank_request,
    decode_rank_response,
    decode_seed,
    dumps,
    encode_problem,
    encode_rank_many_request,
    encode_rank_request,
    encode_rank_response,
    encode_seed,
    error_body,
    json_safe,
    loads,
    validate_error_body,
)
from repro.serve.loadgen import pin_request_seeds, synthetic_requests

SEED = 20240707


def wire(obj):
    """Push a payload through actual JSON bytes, like the server does."""
    return loads(dumps(obj))


class TestSeeds:
    def test_none_and_int_round_trip(self):
        assert decode_seed(wire(encode_seed(None))) is None
        assert decode_seed(wire(encode_seed(12345))) == 12345

    def test_seed_sequence_child_round_trips_to_same_stream(self):
        child = np.random.SeedSequence(SEED).spawn(3)[2]
        decoded = decode_seed(wire(encode_seed(child)))
        assert isinstance(decoded, np.random.SeedSequence)
        original = np.random.default_rng(child).random(8)
        restored = np.random.default_rng(decoded).random(8)
        assert np.array_equal(original, restored)

    def test_generator_not_encodable(self):
        with pytest.raises(WireFormatError):
            encode_seed(np.random.default_rng(0))

    @pytest.mark.parametrize(
        "obj", [True, "x", 1.5, {"entropy": "x"}, {"entropy": -1}, {"spawn_key": [1]}]
    )
    def test_bad_seed_payloads_rejected(self, obj):
        with pytest.raises(WireFormatError):
            decode_seed(obj)


class TestProblems:
    def _requests(self, n=6):
        return synthetic_requests(n, seed=SEED)

    def test_full_problem_round_trip(self):
        problem = self._requests()[0].problem
        decoded = decode_problem(wire(encode_problem(problem)))
        assert np.array_equal(decoded.base_ranking.order, problem.base_ranking.order)
        assert np.allclose(decoded.scores, problem.scores)
        assert decoded.groups is not None and problem.groups is not None
        assert [decoded.groups.group_of(i) for i in range(decoded.groups.n_items)] == [
            problem.groups.group_of(i) for i in range(problem.groups.n_items)
        ]
        assert decoded.constraints is not None and problem.constraints is not None
        assert np.allclose(decoded.constraints.alpha, problem.constraints.alpha)
        assert np.allclose(decoded.constraints.beta, problem.constraints.beta)
        assert decoded.constraints.k == problem.constraints.k

    def test_optional_fields_stay_none(self):
        from repro.algorithms.base import FairRankingProblem
        from repro.rankings.permutation import Ranking

        bare = FairRankingProblem(base_ranking=Ranking(np.arange(5)))
        decoded = decode_problem(wire(encode_problem(bare)))
        assert decoded.scores is None
        assert decoded.groups is None
        assert decoded.constraints is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda o: o.pop("base_ranking"),
            lambda o: o.__setitem__("base_ranking", [0, "x"]),
            lambda o: o.__setitem__("scores", "nope"),
            lambda o: o.__setitem__("groups", "nope"),
            lambda o: o.__setitem__("constraints", {"alpha": [0.1]}),
            lambda o: o.__setitem__("base_ranking", [0, 0, 1]),  # invalid perm
        ],
    )
    def test_malformed_problems_rejected(self, mutate):
        obj = encode_problem(self._requests()[0].problem)
        mutate(obj)
        with pytest.raises(WireFormatError):
            decode_problem(obj)


class TestRequests:
    def _request(self):
        return pin_request_seeds(synthetic_requests(4, seed=SEED), seed=SEED)[1]

    def test_rank_request_round_trip(self):
        request = self._request()
        decoded, deadline = decode_rank_request(
            wire(encode_rank_request(request, deadline=2.5))
        )
        assert decoded.algorithm == request.algorithm
        assert decoded.params == request.params
        assert decoded.request_id == request.request_id
        assert deadline == 2.5
        assert isinstance(decoded.seed, np.random.SeedSequence)

    def test_version_is_required_and_checked(self):
        body = encode_rank_request(self._request())
        assert body["version"] == SCHEMA_VERSION
        for bad in ({**body, "version": 2}, {k: v for k, v in body.items() if k != "version"}):
            with pytest.raises(WireFormatError):
                decode_rank_request(bad)

    def test_rank_many_round_trip_with_root_seed(self):
        requests = synthetic_requests(3, seed=SEED)
        body = wire(encode_rank_many_request(requests, seed=SEED, deadline=1.0))
        decoded, seed, deadline = decode_rank_many_request(body)
        assert len(decoded) == 3
        assert seed == SEED
        assert deadline == 1.0

    def test_rank_many_rejects_empty_and_bad_items(self):
        with pytest.raises(WireFormatError):
            decode_rank_many_request(
                {"version": 1, "seed": None, "requests": []}
            )
        body = encode_rank_many_request(synthetic_requests(2, seed=SEED))
        body["requests"][1] = {"version": 1}
        with pytest.raises(WireFormatError, match=r"requests\[1\]"):
            decode_rank_many_request(body)

    def test_decoded_requests_rank_to_the_same_digest(self):
        """The whole point of the schema layer: a wire round-trip must not
        perturb served results.  Serial engine on both sides."""
        requests = pin_request_seeds(synthetic_requests(6, seed=SEED), seed=SEED)
        restored = [
            decode_rank_request(wire(encode_rank_request(r)))[0] for r in requests
        ]
        engine = RankingEngine(n_jobs=1)
        try:
            original = engine.rank_many(requests)
            round_tripped = engine.rank_many(restored)
        finally:
            engine.close()
        assert responses_digest(original) == responses_digest(round_tripped)


class TestResponses:
    def _response(self):
        engine = RankingEngine(n_jobs=1)
        try:
            request = pin_request_seeds(synthetic_requests(2, seed=SEED), seed=SEED)[0]
            return list(engine.rank_many([request]))[0]
        finally:
            engine.close()

    def test_response_round_trip(self):
        response = self._response()
        decoded = decode_rank_response(wire(encode_rank_response(response)))
        assert decoded.index == response.index
        assert decoded.algorithm == response.algorithm
        assert np.array_equal(decoded.ranking.order, response.ranking.order)
        assert decoded.seconds == pytest.approx(response.seconds)
        assert decoded.request_id == response.request_id

    def test_response_digest_survives_the_wire(self):
        response = self._response()
        decoded = decode_rank_response(wire(encode_rank_response(response)))
        assert responses_digest([response]) == responses_digest([decoded])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda o: o.pop("version"),
            lambda o: o.pop("ranking"),
            lambda o: o.__setitem__("index", "0"),
            lambda o: o.__setitem__("seconds", "fast"),
        ],
    )
    def test_malformed_responses_rejected(self, mutate):
        obj = encode_rank_response(self._response())
        mutate(obj)
        with pytest.raises(WireFormatError):
            decode_rank_response(obj)


class TestErrorBody:
    """Satellite: one structured error shape shared by 400/413/429/504."""

    def test_minimal_body_validates(self):
        body = error_body("bad_request", "nope")
        assert validate_error_body(wire(body)) == {
            "code": "bad_request",
            "message": "nope",
        }

    def test_full_body_validates_with_retry_and_details(self):
        body = error_body(
            "overloaded",
            "try later",
            retry_after_s=0.05,
            details={"queue_depth": 7, "cost_budget": np.float64(1.5)},
        )
        inner = validate_error_body(wire(body))
        assert inner["retry_after_s"] == 0.05
        assert inner["details"] == {"queue_depth": 7, "cost_budget": 1.5}

    @pytest.mark.parametrize(
        "obj",
        [
            {},
            {"error": {"message": "m"}},
            {"error": {"code": "", "message": "m"}},
            {"error": {"code": "c", "message": 1}},
            {"error": {"code": "c", "message": "m", "retry_after_s": "soon"}},
            {"error": {"code": "c", "message": "m", "details": "oops"}},
            {"error": {"code": "c", "message": "m", "extra": 1}},
        ],
    )
    def test_nonconforming_bodies_rejected(self, obj):
        with pytest.raises(WireFormatError):
            validate_error_body(obj)


class TestJsonPlumbing:
    def test_json_safe_handles_numpy_and_exotics(self):
        payload = {
            "i": np.int64(3),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
            "nan": float("nan"),
            "set": {1},
            1: "int-key",
        }
        safe = json_safe(payload)
        assert safe["i"] == 3 and isinstance(safe["i"], int)
        assert safe["f"] == 0.5 and isinstance(safe["f"], float)
        assert safe["b"] is True
        assert safe["arr"] == [0, 1, 2]
        assert safe["nan"] == "nan"
        assert safe["set"] == [1]
        assert safe["1"] == "int-key"
        # The result must actually serialize under the strict dumper.
        assert isinstance(dumps(safe), bytes)

    def test_dumps_is_deterministic_and_compact(self):
        a = dumps({"b": 1, "a": [1, 2]})
        b = dumps({"a": [1, 2], "b": 1})
        assert a == b == b'{"a":[1,2],"b":1}'

    def test_loads_maps_all_failures_to_wire_format_error(self):
        for bad in (b"{", b"\xff\xfe", b""):
            with pytest.raises(WireFormatError):
                loads(bad)
