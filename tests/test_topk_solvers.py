"""Tests for the top-k selection variants of the DP and ILP solvers."""

import itertools

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.ilp import IlpFairRanking
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.quality import dcg


def brute_force_topk_dcg(scores, groups, constraints, k):
    """Exhaustive best DCG@k over fair k-prefixes (tiny instances only)."""
    n = len(scores)
    lower, upper = constraints.count_bounds_matrix(k)
    best = -np.inf
    for prefix in itertools.permutations(range(n), k):
        counts = np.zeros(groups.n_groups, dtype=np.int64)
        ok = True
        for ell, item in enumerate(prefix, start=1):
            counts[groups.indices[item]] += 1
            if np.any(counts < lower[ell - 1]) or np.any(counts > upper[ell - 1]):
                ok = False
                break
        if not ok:
            continue
        value = sum(
            scores[item] / np.log1p(j + 1) for j, item in enumerate(prefix)
        )
        best = max(best, value)
    return best


@pytest.fixture
def instance(rng):
    ga = GroupAssignment(["a", "a", "a", "b", "b", "b", "b"])
    scores = rng.random(7)
    fc = FairnessConstraints.proportional(ga)
    return FairRankingProblem.from_scores(scores, ga, fc)


class TestTopKDp:
    def test_matches_brute_force(self, instance):
        for k in (2, 3, 4):
            result = DpFairRanking(top_k=k).rank(instance)
            best = brute_force_topk_dcg(
                instance.scores, instance.groups, instance.constraints, k
            )
            assert result.metadata["dcg"] == pytest.approx(best)
            assert dcg(result.ranking, instance.scores, k=k) == pytest.approx(best)

    def test_full_ranking_returned(self, instance):
        result = DpFairRanking(top_k=3).rank(instance)
        assert sorted(result.ranking.order.tolist()) == list(range(7))

    def test_rest_in_score_order(self, instance):
        result = DpFairRanking(top_k=3).rank(instance)
        tail = result.ranking.order[3:]
        assert np.all(np.diff(instance.scores[tail]) <= 0)

    def test_k_clamped_to_n(self, instance):
        full = DpFairRanking().rank(instance)
        clamped = DpFairRanking(top_k=100).rank(instance)
        assert clamped.metadata["dcg"] == pytest.approx(full.metadata["dcg"])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DpFairRanking(top_k=0)

    def test_prefix_is_fair(self, instance):
        from repro.fairness.checks import prefix_group_counts

        k = 4
        result = DpFairRanking(top_k=k).rank(instance)
        counts = prefix_group_counts(result.ranking, instance.groups)
        lower, upper = instance.constraints.count_bounds_matrix(k)
        assert np.all(counts[:k] >= lower)
        assert np.all(counts[:k] <= upper)


class TestTopKIlp:
    def test_matches_dp(self, instance):
        for k in (2, 4):
            v_ilp = IlpFairRanking(top_k=k).rank(instance).metadata["dcg"]
            v_dp = DpFairRanking(top_k=k).rank(instance).metadata["dcg"]
            assert v_ilp == pytest.approx(v_dp, rel=1e-9)

    def test_valid_full_permutation(self, instance):
        result = IlpFairRanking(top_k=3).rank(instance)
        assert sorted(result.ranking.order.tolist()) == list(range(7))

    def test_metadata_k(self, instance):
        assert IlpFairRanking(top_k=3).rank(instance).metadata["k"] == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            IlpFairRanking(top_k=-1)

    def test_topk_selects_best_items(self):
        # Without binding constraints the top-k must take the k best scores.
        ga = GroupAssignment(["a", "b"] * 3)
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.0, 0.0])
        scores = np.array([0.9, 0.1, 0.8, 0.2, 0.7, 0.3])
        problem = FairRankingProblem.from_scores(scores, ga, fc)
        result = IlpFairRanking(top_k=3).rank(problem)
        assert set(result.ranking.prefix(3).tolist()) == {0, 2, 4}
