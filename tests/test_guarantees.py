"""Tests for the statistical fairness-guarantee utilities."""

import numpy as np
import pytest

from repro.fairness.constraints import FairnessConstraints
from repro.fairness.guarantees import (
    estimate_fairness_probability,
    expected_infeasible_index,
    infeasible_index_tail_bound,
    sample_budget_for_confidence,
)
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking


@pytest.fixture
def alternating_center():
    ga = GroupAssignment.from_indices(np.array([i % 2 for i in range(10)]))
    return Ranking(np.arange(10)), ga


@pytest.fixture
def segregated_center():
    ga = GroupAssignment.from_indices(np.array([i % 2 for i in range(10)]))
    order = np.concatenate([np.arange(0, 10, 2), np.arange(1, 10, 2)])
    return Ranking(order), ga


class TestProbabilityEstimate:
    def test_fair_center_high_theta_prob_one(self, alternating_center):
        center, ga = alternating_center
        est = estimate_fairness_probability(center, 30.0, ga, m=300, seed=0)
        assert est.estimate == 1.0
        assert est.high == 1.0

    def test_unfair_center_high_theta_prob_zero(self, segregated_center):
        center, ga = segregated_center
        est = estimate_fairness_probability(center, 30.0, ga, m=300, seed=0)
        assert est.estimate == 0.0
        assert est.low == 0.0

    def test_interval_contains_estimate(self, segregated_center):
        center, ga = segregated_center
        est = estimate_fairness_probability(
            center, 0.3, ga, max_infeasible_index=6, m=500, seed=1
        )
        assert est.low <= est.estimate <= est.high
        assert 0.0 <= est.low and est.high <= 1.0

    def test_relaxed_threshold_monotone(self, segregated_center):
        center, ga = segregated_center
        tight = estimate_fairness_probability(
            center, 0.5, ga, max_infeasible_index=2, m=800, seed=2
        )
        loose = estimate_fairness_probability(
            center, 0.5, ga, max_infeasible_index=10, m=800, seed=2
        )
        assert loose.estimate >= tight.estimate

    def test_validation(self, alternating_center):
        center, ga = alternating_center
        with pytest.raises(ValueError):
            estimate_fairness_probability(center, 1.0, ga, m=0)
        with pytest.raises(ValueError):
            estimate_fairness_probability(center, 1.0, ga, confidence=1.5)


class TestExpectedIiAndTailBound:
    def test_expected_ii_between_extremes(self, segregated_center):
        center, ga = segregated_center
        low_noise = expected_infeasible_index(center, 4.0, ga, m=500, seed=0)
        high_noise = expected_infeasible_index(center, 0.1, ga, m=500, seed=0)
        assert high_noise < low_noise  # noise repairs the unfair centre

    def test_markov_bound_holds_empirically(self, segregated_center):
        center, ga = segregated_center
        fc = FairnessConstraints.proportional(ga)
        exp_ii = expected_infeasible_index(center, 0.5, ga, fc, m=3000, seed=3)
        threshold = 12.0
        bound = infeasible_index_tail_bound(exp_ii, threshold)
        # Empirical tail probability must respect the Markov bound.
        from repro.algorithms.criteria import batch_infeasible_index
        from repro.mallows.sampling import sample_mallows_batch

        orders = sample_mallows_batch(center, 0.5, 3000, seed=4)
        tail = float(
            (batch_infeasible_index(orders, ga, fc) >= threshold).mean()
        )
        assert tail <= bound + 0.02

    def test_bound_clipped_and_validated(self):
        assert infeasible_index_tail_bound(100.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            infeasible_index_tail_bound(1.0, 0.0)
        with pytest.raises(ValueError):
            infeasible_index_tail_bound(-1.0, 1.0)


class TestSampleBudget:
    def test_known_values(self):
        # p = 0.5, delta = 0.01 -> m = ceil(ln .01 / ln .5) = 7.
        assert sample_budget_for_confidence(0.5, 0.01) == 7
        assert sample_budget_for_confidence(1.0, 0.01) == 1

    def test_budget_guarantee_holds(self):
        p, delta = 0.3, 0.05
        m = sample_budget_for_confidence(p, delta)
        assert 1 - (1 - p) ** m >= 1 - delta
        assert 1 - (1 - p) ** (m - 1) < 1 - delta

    def test_paper_budget_15(self):
        # The paper's m = 15 guarantees >= 95% success whenever each sample
        # is fair with probability >= 0.19.
        m = sample_budget_for_confidence(0.19, 0.05)
        assert m <= 15

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_budget_for_confidence(0.0, 0.1)
        with pytest.raises(ValueError):
            sample_budget_for_confidence(0.5, 0.0)
        with pytest.raises(ValueError):
            sample_budget_for_confidence(1.5, 0.1)
