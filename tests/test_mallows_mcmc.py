"""Tests for the MCMC Mallows sampler and alternative noise models."""

import numpy as np
import pytest

from repro.mallows.mcmc import (
    plackett_luce_noise,
    random_adjacent_swaps,
    sample_mallows_mcmc,
)
from repro.mallows.model import expected_kendall_tau
from repro.rankings.distances import footrule_distance, kendall_tau_distance
from repro.rankings.permutation import Ranking, identity, random_ranking


class TestMcmcSampler:
    def test_returns_valid_rankings(self):
        samples = sample_mallows_mcmc(
            identity(6), 1.0, 10, kendall_tau_distance, burn_in=100, thin=5, seed=0
        )
        assert len(samples) == 10
        assert all(sorted(r.order.tolist()) == list(range(6)) for r in samples)

    def test_kt_target_matches_rim_statistics(self):
        # The MCMC chain targeting the KT Mallows law should reproduce the
        # closed-form expected distance.
        n, theta = 6, 1.0
        center = identity(n)
        samples = sample_mallows_mcmc(
            center, theta, 400, kendall_tau_distance, burn_in=2000, thin=20, seed=1
        )
        mean_d = np.mean([kendall_tau_distance(r, center) for r in samples])
        assert mean_d == pytest.approx(expected_kendall_tau(n, theta), abs=0.8)

    def test_footrule_distance_supported(self):
        center = identity(5)
        samples = sample_mallows_mcmc(
            center, 0.8, 50, footrule_distance, burn_in=500, thin=5, seed=2
        )
        # High-theta footrule Mallows concentrates near the centre.
        mean_d = np.mean([footrule_distance(r, center) for r in samples])
        uniform_mean = np.mean(
            [footrule_distance(random_ranking(5, seed=s), center) for s in range(200)]
        )
        assert mean_d < uniform_mean

    def test_zero_samples(self):
        assert sample_mallows_mcmc(identity(4), 1.0, 0, kendall_tau_distance) == []

    def test_tiny_center(self):
        samples = sample_mallows_mcmc(identity(1), 1.0, 3, kendall_tau_distance)
        assert len(samples) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_mallows_mcmc(identity(3), -1.0, 1, kendall_tau_distance)
        with pytest.raises(ValueError):
            sample_mallows_mcmc(identity(3), 1.0, 1, kendall_tau_distance, thin=0)
        with pytest.raises(ValueError):
            sample_mallows_mcmc(identity(3), 1.0, -1, kendall_tau_distance)


class TestPlackettLuce:
    def test_valid_rankings(self):
        samples = plackett_luce_noise(identity(7), 0.5, 20, seed=0)
        assert len(samples) == 20
        assert all(sorted(r.order.tolist()) == list(range(7)) for r in samples)

    def test_small_strength_concentrates(self):
        center = random_ranking(8, seed=1)
        tight = plackett_luce_noise(center, 0.05, 100, seed=2)
        loose = plackett_luce_noise(center, 0.9, 100, seed=2)
        d_tight = np.mean([kendall_tau_distance(r, center) for r in tight])
        d_loose = np.mean([kendall_tau_distance(r, center) for r in loose])
        assert d_tight < d_loose

    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            plackett_luce_noise(identity(3), 0.0, 1)
        with pytest.raises(ValueError):
            plackett_luce_noise(identity(3), 1.5, 1)

    def test_negative_m(self):
        with pytest.raises(ValueError):
            plackett_luce_noise(identity(3), 0.5, -1)


class TestRandomAdjacentSwaps:
    def test_zero_swaps_is_center(self):
        center = random_ranking(6, seed=0)
        samples = random_adjacent_swaps(center, 0, 5, seed=1)
        assert all(r == center for r in samples)

    def test_distance_bounded_by_swaps(self):
        center = identity(8)
        for r in random_adjacent_swaps(center, 3, 30, seed=2):
            assert kendall_tau_distance(r, center) <= 3

    def test_more_swaps_more_distance(self):
        center = identity(10)
        few = random_adjacent_swaps(center, 2, 200, seed=3)
        many = random_adjacent_swaps(center, 30, 200, seed=3)
        assert np.mean([kendall_tau_distance(r, center) for r in few]) < np.mean(
            [kendall_tau_distance(r, center) for r in many]
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_adjacent_swaps(identity(3), -1, 1)
        with pytest.raises(ValueError):
            random_adjacent_swaps(identity(3), 1, -1)
