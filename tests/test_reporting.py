"""Tests for report persistence and the CLI --output path."""

import os

import pytest

from repro.experiments.reporting import _safe_filename, write_reports


class TestWriteReports:
    def test_writes_files_and_index(self, tmp_path):
        reports = {"fig1": "series A", "fig5_theta0.5_sigma0": "series B"}
        paths = write_reports(reports, str(tmp_path / "out"))
        assert len(paths) == 3  # two artefacts + index
        for p in paths:
            assert os.path.isfile(p)

    def test_contents_roundtrip(self, tmp_path):
        out = str(tmp_path)
        write_reports({"x": "hello\nworld"}, out)
        with open(os.path.join(out, "x.txt")) as f:
            assert f.read() == "hello\nworld\n"

    def test_index_links_all(self, tmp_path):
        out = str(tmp_path)
        write_reports({"a": "1", "b": "2"}, out)
        with open(os.path.join(out, "INDEX.md")) as f:
            index = f.read()
        assert "a.txt" in index and "b.txt" in index

    def test_creates_nested_directory(self, tmp_path):
        out = str(tmp_path / "deep" / "nested")
        write_reports({"a": "1"}, out)
        assert os.path.isfile(os.path.join(out, "a.txt"))

    def test_overwrites(self, tmp_path):
        out = str(tmp_path)
        write_reports({"a": "old"}, out)
        write_reports({"a": "new"}, out)
        with open(os.path.join(out, "a.txt")) as f:
            assert f.read().strip() == "new"


class TestSafeFilename:
    def test_passthrough(self):
        assert _safe_filename("fig1") == "fig1"

    def test_sanitizes(self):
        assert "/" not in _safe_filename("a/b:c d")
        assert _safe_filename("theta=0.5, sigma=1") == "theta_0.5__sigma_1"

    def test_empty_fallback(self):
        assert _safe_filename("...") == "report"
