"""Cross-module integration tests: end-to-end pipelines the paper implies."""

import numpy as np
import pytest

from repro import (
    ApproxMultiValuedIPF,
    DetConstSort,
    DpFairRanking,
    FairRankingProblem,
    FairnessConstraints,
    GroupAssignment,
    MallowsFairRanking,
    combine_attributes,
    infeasible_index,
    ndcg,
    percent_fair_positions,
    synthesize_german_credit,
    weakly_fair_ranking,
)
from repro.algorithms.criteria import MinInfeasibleIndexCriterion
from repro.fairness.infeasible_index import lower_violations


class TestGermanCreditPipeline:
    """The paper's Section V-C flow, end to end on one subsample."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = synthesize_german_credit(seed=0).subsample(40, seed=1)
        scores = data.credit_amount
        known = data.age_sex
        fc = FairnessConstraints.proportional(known)
        base = weakly_fair_ranking(scores, known, fc)
        problem = FairRankingProblem(
            base_ranking=base, scores=scores, groups=known, constraints=fc
        )
        return data, problem

    def test_input_ranking_is_fair(self, setup):
        data, problem = setup
        assert infeasible_index(
            problem.base_ranking, problem.groups, problem.constraints
        ) == 0

    def test_all_algorithms_produce_valid_outputs(self, setup):
        data, problem = setup
        for alg in (
            MallowsFairRanking(0.5, 15),
            DetConstSort(),
            ApproxMultiValuedIPF(),
            DpFairRanking(),
        ):
            result = alg.rank(problem, seed=0)
            assert sorted(result.ranking.order.tolist()) == list(range(40))

    def test_attribute_aware_keep_known_fairness(self, setup):
        data, problem = setup
        for alg in (ApproxMultiValuedIPF(), DpFairRanking()):
            result = alg.rank(problem, seed=0)
            assert percent_fair_positions(
                result.ranking, problem.groups, problem.constraints
            ) == 100.0

    def test_unknown_attribute_evaluation(self, setup):
        data, problem = setup
        fc_housing = FairnessConstraints.proportional(data.housing)
        for alg in (MallowsFairRanking(0.5, 15), DpFairRanking()):
            result = alg.rank(problem, seed=0)
            p = percent_fair_positions(result.ranking, data.housing, fc_housing)
            assert 0.0 <= p <= 100.0

    def test_combined_attribute_construction(self):
        # Rebuild Age-Sex from separate Age and Sex attributes.
        sex = GroupAssignment(["female", "male", "male", "female"])
        age = GroupAssignment(["<35", "<35", ">=35", ">=35"])
        combined = combine_attributes(age, sex)
        assert combined.n_groups == 4


class TestRobustnessClaim:
    """The paper's core claim: Mallows noise improves fairness w.r.t. an
    attribute it never saw, at bounded NDCG cost."""

    def test_unknown_attribute_repair(self):
        rng = np.random.default_rng(0)
        n = 30
        # Hidden attribute correlates with score: score-sorted ranking is
        # unfair w.r.t. the hidden groups.
        hidden = GroupAssignment.from_indices(
            np.array([0] * (n // 2) + [1] * (n // 2))
        )
        scores = np.concatenate(
            [rng.random(n // 2) * 0.5, rng.random(n // 2) * 0.5 + 0.5]
        )
        fc_hidden = FairnessConstraints.proportional(hidden)
        problem = FairRankingProblem.from_scores(scores)  # no groups at all!
        base_ii = infeasible_index(problem.base_ranking, hidden, fc_hidden)

        # Note the dispersion must be scaled to the ranking length: at
        # n = 30 a theta of 0.5 perturbs ~28 of 435 possible inversions and
        # barely moves a fully segregated centre, so we use theta = 0.1.
        iis, ndcgs = [], []
        for s in range(25):
            result = MallowsFairRanking(0.1, 1).rank(problem, seed=s)
            iis.append(infeasible_index(result.ranking, hidden, fc_hidden))
            ndcgs.append(ndcg(result.ranking, scores))
        assert np.mean(iis) < base_ii          # fairness improved ...
        assert np.mean(ndcgs) > 0.85           # ... at bounded NDCG cost

    def test_theta_controls_tradeoff(self):
        rng = np.random.default_rng(1)
        n = 20
        hidden = GroupAssignment.from_indices(np.array([0, 1] * (n // 2)))
        scores = np.where(np.arange(n) % 2 == 0, rng.random(n), rng.random(n) + 1)
        problem = FairRankingProblem.from_scores(scores)
        mean_ndcg = {}
        for theta in (0.3, 3.0):
            vals = [
                ndcg(
                    MallowsFairRanking(theta, 1).rank(problem, seed=s).ranking,
                    scores,
                )
                for s in range(20)
            ]
            mean_ndcg[theta] = np.mean(vals)
        assert mean_ndcg[3.0] > mean_ndcg[0.3]


class TestCriterionDrivenSelection:
    def test_ii_criterion_with_proxy_attribute(self):
        # Select samples by fairness on a *proxy* attribute and verify the
        # improvement transfers to the proxy (not necessarily elsewhere).
        rng = np.random.default_rng(2)
        n = 20
        proxy = GroupAssignment.from_indices(np.array([0, 1] * (n // 2)))
        scores = np.sort(rng.random(n))[::-1]
        problem = FairRankingProblem.from_scores(scores, proxy)
        fc = problem.constraints
        crit = MinInfeasibleIndexCriterion()
        best, single = [], []
        for s in range(15):
            r_best = MallowsFairRanking(0.5, 15, criterion=crit).rank(problem, seed=s)
            r_one = MallowsFairRanking(0.5, 1).rank(problem, seed=s)
            best.append(infeasible_index(r_best.ranking, proxy, fc))
            single.append(infeasible_index(r_one.ranking, proxy, fc))
        assert np.mean(best) <= np.mean(single)


class TestDetConstSortVsOptimal:
    def test_heuristic_close_to_exact_on_ndcg(self):
        rng = np.random.default_rng(3)
        ga = GroupAssignment.from_indices(rng.integers(0, 3, size=30))
        scores = rng.random(30)
        problem = FairRankingProblem.from_scores(scores, ga)
        heur = DetConstSort().rank(problem, seed=0)
        exact = DpFairRanking().rank(problem, seed=0)
        assert ndcg(heur.ranking, scores) <= ndcg(exact.ranking, scores) + 1e-9
        assert ndcg(heur.ranking, scores) > 0.9 * ndcg(exact.ranking, scores)
        assert lower_violations(heur.ranking, ga, problem.constraints) == 0
