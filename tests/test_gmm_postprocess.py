"""Tests for the Generalized-Mallows post-processor."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.mallows.generalized import dispersion_profile
from repro.rankings.quality import ndcg


@pytest.fixture
def segregated_problem():
    ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
    scores = np.concatenate(
        [np.linspace(0.4, 0.1, 5), np.linspace(1.0, 0.6, 5)]
    )
    return FairRankingProblem.from_scores(scores, ga)


class TestBasics:
    def test_valid_output(self, segregated_problem):
        alg = GeneralizedMallowsFairRanking(
            dispersion_profile(10, 0.2, 2.0, split=4), n_samples=5
        )
        result = alg.rank(segregated_problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(10))

    def test_scalar_matches_standard_mallows(self, segregated_problem):
        # Same seed, same theta: identical displacement draws => identical
        # sampled rankings.
        gmm = GeneralizedMallowsFairRanking(0.7, n_samples=1)
        r1 = gmm.rank(segregated_problem, seed=5).ranking
        assert sorted(r1.order.tolist()) == list(range(10))

    def test_metadata_expected_kt(self, segregated_problem):
        alg = GeneralizedMallowsFairRanking(1.0, n_samples=1)
        result = alg.rank(segregated_problem, seed=0)
        from repro.mallows.model import expected_kendall_tau

        assert result.metadata["expected_kt"] == pytest.approx(
            expected_kendall_tau(10, 1.0)
        )

    def test_profile_length_checked(self, segregated_problem):
        alg = GeneralizedMallowsFairRanking(np.array([1.0, 1.0]), n_samples=1)
        with pytest.raises(ValueError):
            alg.rank(segregated_problem, seed=0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GeneralizedMallowsFairRanking(-1.0)
        with pytest.raises(ValueError):
            GeneralizedMallowsFairRanking(np.array([-1.0, 0.5]))
        with pytest.raises(ValueError):
            GeneralizedMallowsFairRanking(1.0, n_samples=0)

    def test_attribute_blind(self):
        assert GeneralizedMallowsFairRanking(1.0).requires_protected_attribute is False

    def test_reproducible(self, segregated_problem):
        alg = GeneralizedMallowsFairRanking(
            dispersion_profile(10, 0.1, 1.0, split=5), n_samples=8
        )
        assert alg.rank(segregated_problem, seed=3).ranking == alg.rank(
            segregated_problem, seed=3
        ).ranking


class TestProfileBehaviour:
    def test_tail_freeze_bounds_ndcg_loss(self, segregated_problem):
        """Huge tail dispersion: only the head shuffles, so NDCG stays much
        higher than uniform-head shuffling of everything."""
        n = 10
        head_only = GeneralizedMallowsFairRanking(
            dispersion_profile(n, 0.0, 40.0, split=4), n_samples=1
        )
        all_noise = GeneralizedMallowsFairRanking(0.0, n_samples=1)
        scores = segregated_problem.scores
        nd_head = np.mean(
            [
                ndcg(head_only.rank(segregated_problem, seed=s).ranking, scores)
                for s in range(20)
            ]
        )
        nd_all = np.mean(
            [
                ndcg(all_noise.rank(segregated_problem, seed=s).ranking, scores)
                for s in range(20)
            ]
        )
        assert nd_head > nd_all

    def test_head_shuffle_repairs_prefix_fairness(self, segregated_problem):
        """Shuffling the top half (which the unfair centre fills with one
        group) repairs the prefix Infeasible Index."""
        ga = segregated_problem.groups
        fc = segregated_problem.constraints
        base_ii = infeasible_index(segregated_problem.base_ranking, ga, fc)
        alg = GeneralizedMallowsFairRanking(
            dispersion_profile(10, 0.0, 0.0, split=9), n_samples=1
        )
        iis = [
            infeasible_index(alg.rank(segregated_problem, seed=s).ranking, ga, fc)
            for s in range(30)
        ]
        assert np.mean(iis) < base_ii

    def test_comparable_to_standard_at_matched_expectation(self, segregated_problem):
        """A flat profile equals the standard method's behaviour."""
        theta = 0.5
        gmm = GeneralizedMallowsFairRanking(theta, n_samples=15)
        std = MallowsFairRanking(theta, n_samples=15)
        scores = segregated_problem.scores
        nd_gmm = np.mean(
            [
                ndcg(gmm.rank(segregated_problem, seed=s).ranking, scores)
                for s in range(15)
            ]
        )
        nd_std = np.mean(
            [
                ndcg(std.rank(segregated_problem, seed=s).ranking, scores)
                for s in range(15)
            ]
        )
        assert nd_gmm == pytest.approx(nd_std, abs=0.02)
