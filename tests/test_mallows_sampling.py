"""Statistical tests of the RIM sampler against the exact Mallows law."""

import math
from collections import Counter

import numpy as np
import pytest

from repro.mallows.model import MallowsModel, expected_kendall_tau
from repro.mallows.sampling import (
    _displacement_draws,
    sample_displacements_total,
    sample_mallows,
    sample_mallows_batch,
)
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, all_rankings, identity, random_ranking


class TestBatchShapeAndValidity:
    def test_shapes(self):
        orders = sample_mallows_batch(identity(7), 1.0, 13, seed=0)
        assert orders.shape == (13, 7)

    def test_rows_are_permutations(self):
        orders = sample_mallows_batch(identity(9), 0.5, 50, seed=1)
        for row in orders:
            assert sorted(row.tolist()) == list(range(9))

    def test_zero_samples(self):
        assert sample_mallows_batch(identity(5), 1.0, 0).shape == (0, 5)

    def test_empty_center(self):
        assert sample_mallows_batch(Ranking([]), 1.0, 3).shape == (3, 0)

    def test_reproducible(self):
        a = sample_mallows_batch(identity(8), 0.7, 5, seed=42)
        b = sample_mallows_batch(identity(8), 0.7, 5, seed=42)
        assert np.array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_mallows_batch(identity(3), -1.0, 2)
        with pytest.raises(ValueError):
            sample_mallows_batch(identity(3), 1.0, -2)

    def test_wrapper_returns_rankings(self):
        samples = sample_mallows(identity(4), 1.0, 3, seed=0)
        assert all(isinstance(r, Ranking) for r in samples)

    def test_huge_theta_returns_center(self):
        center = random_ranking(10, seed=3)
        orders = sample_mallows_batch(center, 50.0, 20, seed=0)
        assert np.all(orders == center.order[None, :])


class TestStatisticalLaw:
    def test_mean_distance_matches_formula(self):
        n, theta, m = 12, 0.8, 4000
        center = random_ranking(n, seed=9)
        orders = sample_mallows_batch(center, theta, m, seed=5)
        dists = [kendall_tau_distance(Ranking(o), center) for o in orders]
        expected = expected_kendall_tau(n, theta)
        # Standard error of the mean is ~sigma/sqrt(m); allow 4 SEs.
        assert np.mean(dists) == pytest.approx(expected, abs=0.35)

    def test_uniform_at_theta_zero(self):
        # theta=0 must be the uniform distribution over S_3.
        m = 12000
        orders = sample_mallows_batch(identity(3), 0.0, m, seed=2)
        counts = Counter(tuple(o) for o in orders)
        assert len(counts) == 6
        for c in counts.values():
            assert abs(c - m / 6) < 5 * math.sqrt(m / 6)

    def test_empirical_matches_pmf_n4(self):
        # Chi-square-style check against exact probabilities on S_4.
        theta, m = 0.6, 30000
        center = Ranking([2, 0, 3, 1])
        model = MallowsModel(center=center, theta=theta)
        orders = sample_mallows_batch(center, theta, m, seed=11)
        counts = Counter(tuple(o) for o in orders)
        chi2 = 0.0
        for r in all_rankings(4):
            expected = model.pmf(r) * m
            observed = counts.get(tuple(r.order.tolist()), 0)
            chi2 += (observed - expected) ** 2 / expected
        # 23 dof; P(chi2 > 50) < 1e-3.
        assert chi2 < 50.0

    def test_distance_distribution_centerfree(self):
        # The law of d(pi, center) must not depend on the center.
        theta, m, n = 1.0, 3000, 8
        d1 = sample_displacements_total(n, theta, m, seed=1)
        orders = sample_mallows_batch(random_ranking(n, seed=4), theta, m, seed=2)
        center = random_ranking(n, seed=4)
        d2 = [kendall_tau_distance(Ranking(o), center) for o in orders]
        assert np.mean(d1) == pytest.approx(np.mean(d2), abs=0.4)

    def test_larger_theta_concentrates(self):
        center = random_ranking(10, seed=0)
        mean_d = []
        for theta in (0.2, 1.0, 3.0):
            orders = sample_mallows_batch(center, theta, 800, seed=7)
            mean_d.append(
                np.mean([kendall_tau_distance(Ranking(o), center) for o in orders])
            )
        assert mean_d[0] > mean_d[1] > mean_d[2]

    def test_displacement_totals_match_model_mean(self):
        n, theta = 20, 0.5
        totals = sample_displacements_total(n, theta, 4000, seed=3)
        assert totals.mean() == pytest.approx(expected_kendall_tau(n, theta), rel=0.03)


class TestThetaUnderflowBoundary:
    """Regression cover for the ``e^{-theta}`` → 1 rounding boundary.

    For theta > 0 so small that ``math.exp(-theta)`` rounds to exactly 1.0,
    the geometric inverse-CDF would divide by ``log(1) = 0``; the sampler
    must detect the boundary and use the exact-uniform branch instead.
    """

    #: Positive theta whose ``e^{-theta}`` is exactly 1.0 in float64.
    TINY_THETA = 1e-17

    def test_boundary_precondition(self):
        assert self.TINY_THETA > 0.0
        assert math.exp(-self.TINY_THETA) == 1.0

    def test_draws_match_theta_zero_bit_for_bit(self):
        rng_a = np.random.default_rng(31)
        rng_b = np.random.default_rng(31)
        a = _displacement_draws(10, self.TINY_THETA, 500, rng_a)
        b = _displacement_draws(10, 0.0, 500, rng_b)
        assert np.array_equal(a, b)

    def test_no_floating_point_error_at_boundary(self):
        rng = np.random.default_rng(5)
        with np.errstate(divide="raise", invalid="raise"):
            v = _displacement_draws(8, self.TINY_THETA, 200, rng)
        j = np.arange(8)
        assert np.all(v >= 0) and np.all(v <= j[None, :])

    def test_boundary_law_is_uniform(self):
        # Chi-square on the last insertion step: v_{n-1} ~ U{0..n-1}.
        n, m = 6, 12000
        rng = np.random.default_rng(77)
        v = _displacement_draws(n, self.TINY_THETA, m, rng)
        counts = np.bincount(v[:, -1], minlength=n)
        expected = m / n
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 5 dof; P(chi2 > 20.5) ~ 1e-3.
        assert chi2 < 20.5

    def test_sampler_uniform_at_boundary(self):
        # End to end: the materialized samples are uniform over S_3, exactly
        # as at theta = 0 (shared RNG stream, shared decode).
        m = 6000
        a = sample_mallows_batch(identity(3), self.TINY_THETA, m, seed=13)
        b = sample_mallows_batch(identity(3), 0.0, m, seed=13)
        assert np.array_equal(a, b)
        counts = Counter(tuple(o) for o in a)
        assert len(counts) == 6
