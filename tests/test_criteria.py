"""Tests for sample-selection criteria and the batched fairness metrics."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.criteria import (
    CompositeCriterion,
    MaxNdcgCriterion,
    MinInfeasibleIndexCriterion,
    MinKendallTauCriterion,
    batch_infeasible_index,
    batch_percent_fair,
)
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index, percent_fair_positions
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking, random_ranking
from repro.rankings.quality import ndcg


@pytest.fixture
def problem(two_groups_10):
    scores = np.linspace(1.0, 0.1, 10)
    return FairRankingProblem.from_scores(scores, two_groups_10)


@pytest.fixture
def orders(rng):
    return np.stack([random_ranking(10, seed=rng).order for _ in range(8)])


class TestBatchMetrics:
    def test_batch_ii_matches_scalar(self, orders, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        batch = batch_infeasible_index(orders, two_groups_10, fc)
        for i, row in enumerate(orders):
            assert batch[i] == infeasible_index(Ranking(row), two_groups_10, fc)

    def test_batch_percent_fair_matches_scalar(self, orders, two_groups_10):
        fc = FairnessConstraints.proportional(two_groups_10)
        batch = batch_percent_fair(orders, two_groups_10, fc)
        for i, row in enumerate(orders):
            assert batch[i] == pytest.approx(
                percent_fair_positions(Ranking(row), two_groups_10, fc)
            )


class TestMaxNdcg:
    def test_selects_highest_ndcg(self, problem, orders):
        crit = MaxNdcgCriterion()
        best = crit.best_index(orders, problem)
        ndcgs = [ndcg(Ranking(row), problem.scores) for row in orders]
        assert ndcgs[best] == pytest.approx(max(ndcgs))

    def test_scores_match_ndcg(self, problem, orders):
        crit = MaxNdcgCriterion()
        batch = crit.score_batch(orders, problem)
        for i, row in enumerate(orders):
            assert batch[i] == pytest.approx(ndcg(Ranking(row), problem.scores))

    def test_requires_scores(self, two_groups_10, orders):
        problem = FairRankingProblem(base_ranking=Ranking(np.arange(10)))
        with pytest.raises(ValueError):
            MaxNdcgCriterion().score_batch(orders, problem)

    def test_zero_scores_all_tie(self, two_groups_10, orders):
        problem = FairRankingProblem(
            base_ranking=Ranking(np.arange(10)), scores=np.zeros(10)
        )
        batch = MaxNdcgCriterion().score_batch(orders, problem)
        assert np.all(batch == 1.0)


class TestMinKendallTau:
    def test_selects_closest_to_base(self, problem, orders):
        crit = MinKendallTauCriterion()
        best = crit.best_index(orders, problem)
        dists = [
            kendall_tau_distance(Ranking(row), problem.base_ranking)
            for row in orders
        ]
        assert dists[best] == min(dists)

    def test_base_itself_wins(self, problem):
        orders = np.stack(
            [random_ranking(10, seed=1).order, problem.base_ranking.order]
        )
        assert MinKendallTauCriterion().best_index(orders, problem) == 1


class TestMinInfeasibleIndex:
    def test_selects_fairest(self, problem, orders, two_groups_10):
        crit = MinInfeasibleIndexCriterion()
        best = crit.best_index(orders, problem)
        fc = problem.constraints
        iis = [infeasible_index(Ranking(row), two_groups_10, fc) for row in orders]
        assert iis[best] == min(iis)

    def test_explicit_groups_override(self, problem, orders):
        other = GroupAssignment(["x"] * 5 + ["y"] * 5)
        crit = MinInfeasibleIndexCriterion(groups=other)
        fc = FairnessConstraints.proportional(other)
        best = crit.best_index(orders, problem)
        iis = [infeasible_index(Ranking(row), other, fc) for row in orders]
        assert iis[best] == min(iis)

    def test_requires_groups_somewhere(self, orders):
        problem = FairRankingProblem(base_ranking=Ranking(np.arange(10)))
        with pytest.raises(ValueError):
            MinInfeasibleIndexCriterion().score_batch(orders, problem)


class TestComposite:
    def test_single_part_equivalent(self, problem, orders):
        single = CompositeCriterion([(MaxNdcgCriterion(), 1.0)])
        assert single.best_index(orders, problem) == MaxNdcgCriterion().best_index(
            orders, problem
        )

    def test_weights_steer_selection(self, problem, orders):
        # All weight on KT => same pick as KT criterion.
        combo = CompositeCriterion(
            [(MaxNdcgCriterion(), 0.0), (MinKendallTauCriterion(), 1.0)]
        )
        assert combo.best_index(orders, problem) == MinKendallTauCriterion().best_index(
            orders, problem
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeCriterion([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CompositeCriterion([(MaxNdcgCriterion(), -1.0)])

    def test_name_mentions_parts(self):
        combo = CompositeCriterion(
            [(MaxNdcgCriterion(), 0.5), (MinKendallTauCriterion(), 0.5)]
        )
        assert "max-ndcg" in combo.name
        assert "min-kendall-tau" in combo.name
