"""Tests for the rank-aggregation substrate and the fair pipeline."""

import numpy as np
import pytest

from repro.aggregation.borda import borda_aggregate, borda_scores
from repro.aggregation.copeland import copeland_aggregate
from repro.aggregation.fair_aggregation import FairAggregationPipeline
from repro.aggregation.kemeny import kemeny_aggregate_exact, kwiksort_aggregate
from repro.aggregation.pairwise import (
    kemeny_objective_from_matrix,
    pairwise_preference_matrix,
    total_kendall_tau,
)
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import lower_violations
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows
from repro.rankings.permutation import Ranking, identity, random_ranking
from tests.conftest import all_perms


@pytest.fixture
def noisy_votes():
    center = random_ranking(6, seed=0)
    return center, sample_mallows(center, theta=1.5, m=31, seed=1)


class TestPairwise:
    def test_matrix_antisymmetry(self, noisy_votes):
        _, votes = noisy_votes
        w = pairwise_preference_matrix(votes)
        n = w.shape[0]
        off_diag = ~np.eye(n, dtype=bool)
        assert np.all((w + w.T)[off_diag] == len(votes))
        assert np.all(np.diag(w) == 0)

    def test_objective_matches_total_kt(self, noisy_votes):
        _, votes = noisy_votes
        w = pairwise_preference_matrix(votes)
        for cand in (identity(6), random_ranking(6, seed=3)):
            assert kemeny_objective_from_matrix(cand, w) == total_kendall_tau(
                cand, votes
            )

    def test_empty_votes(self):
        with pytest.raises(ValueError):
            pairwise_preference_matrix([])


class TestBordaCopeland:
    def test_borda_recovers_consensus(self, noisy_votes):
        center, votes = noisy_votes
        assert borda_aggregate(votes) == center

    def test_copeland_recovers_consensus(self, noisy_votes):
        center, votes = noisy_votes
        assert copeland_aggregate(votes) == center

    def test_borda_scores_shape(self, noisy_votes):
        _, votes = noisy_votes
        assert borda_scores(votes).shape == (6,)

    def test_single_vote_identity(self):
        r = random_ranking(5, seed=2)
        assert borda_aggregate([r]) == r
        assert copeland_aggregate([r]) == r


class TestKemeny:
    def test_exact_is_optimal(self, noisy_votes):
        _, votes = noisy_votes
        best = kemeny_aggregate_exact(votes)
        best_cost = total_kendall_tau(best, votes)
        for cand in all_perms(6):
            assert total_kendall_tau(cand, votes) >= best_cost

    def test_exact_guards_large_n(self):
        votes = [identity(12)]
        with pytest.raises(ValueError):
            kemeny_aggregate_exact(votes)

    def test_kwiksort_reasonable(self, noisy_votes):
        _, votes = noisy_votes
        exact_cost = total_kendall_tau(kemeny_aggregate_exact(votes), votes)
        approx = kwiksort_aggregate(votes, seed=0)
        # Expected 11/7-approximation; allow 2x for one seeded run.
        assert total_kendall_tau(approx, votes) <= 2 * exact_cost

    def test_kwiksort_valid_permutation(self, noisy_votes):
        _, votes = noisy_votes
        out = kwiksort_aggregate(votes, seed=5)
        assert sorted(out.order.tolist()) == list(range(6))

    def test_empty_votes(self):
        with pytest.raises(ValueError):
            kemeny_aggregate_exact([])
        with pytest.raises(ValueError):
            kwiksort_aggregate([])


class TestFairPipeline:
    def test_mallows_postprocessor(self, noisy_votes):
        _, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        pipeline = FairAggregationPipeline(MallowsFairRanking(1.0, 5))
        result = pipeline.aggregate(votes, groups=ga, seed=0)
        assert len(result.ranking) == 6
        assert "consensus_total_kt" in result.metadata
        assert "output_total_kt" in result.metadata

    def test_attribute_aware_postprocessor_enforces_floors(self, noisy_votes):
        _, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        fc = FairnessConstraints.proportional(ga)
        pipeline = FairAggregationPipeline(DetConstSort())
        result = pipeline.aggregate(votes, groups=ga, constraints=fc, seed=0)
        assert lower_violations(result.ranking, ga, fc) == 0

    def test_surrogate_scores_follow_consensus(self, noisy_votes):
        center, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        # High theta: post-processing stays at the consensus.
        pipeline = FairAggregationPipeline(MallowsFairRanking(50.0, 1))
        result = pipeline.aggregate(votes, groups=ga, seed=0)
        assert result.ranking == center

    def test_custom_aggregator(self, noisy_votes):
        _, votes = noisy_votes
        pipeline = FairAggregationPipeline(
            MallowsFairRanking(50.0, 1), aggregator=copeland_aggregate
        )
        result = pipeline.aggregate(votes, seed=0)
        assert result.ranking == copeland_aggregate(votes)

    def test_empty_votes(self):
        pipeline = FairAggregationPipeline(MallowsFairRanking(1.0))
        with pytest.raises(ValueError):
            pipeline.aggregate([])
