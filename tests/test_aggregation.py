"""Tests for the rank-aggregation substrate and the fair pipeline."""

import numpy as np
import pytest

from repro.aggregation.borda import borda_aggregate, borda_scores
from repro.aggregation.copeland import copeland_aggregate
from repro.aggregation.fair_aggregation import FairAggregationPipeline
from repro.aggregation.kemeny import kemeny_aggregate_exact, kwiksort_aggregate
from repro.aggregation.pairwise import (
    kemeny_objective_from_matrix,
    pairwise_preference_matrix,
    total_kendall_tau,
)
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import lower_violations
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows
from repro.rankings.permutation import Ranking, identity, random_ranking
from tests.conftest import all_perms


@pytest.fixture
def noisy_votes():
    center = random_ranking(6, seed=0)
    return center, sample_mallows(center, theta=1.5, m=31, seed=1)


class TestPairwise:
    def test_matrix_antisymmetry(self, noisy_votes):
        _, votes = noisy_votes
        w = pairwise_preference_matrix(votes)
        n = w.shape[0]
        off_diag = ~np.eye(n, dtype=bool)
        assert np.all((w + w.T)[off_diag] == len(votes))
        assert np.all(np.diag(w) == 0)

    def test_objective_matches_total_kt(self, noisy_votes):
        _, votes = noisy_votes
        w = pairwise_preference_matrix(votes)
        for cand in (identity(6), random_ranking(6, seed=3)):
            assert kemeny_objective_from_matrix(cand, w) == total_kendall_tau(
                cand, votes
            )

    def test_empty_votes(self):
        with pytest.raises(ValueError):
            pairwise_preference_matrix([])

    def test_matrix_matches_per_ranking_loop(self, noisy_votes):
        """The chunked stacked accumulation equals the original loop."""
        _, votes = noisy_votes
        n = 6
        expected = np.zeros((n, n), dtype=np.int64)
        for r in votes:
            pos = r.positions
            expected += (pos[:, None] < pos[None, :]).astype(np.int64)
        np.fill_diagonal(expected, 0)
        assert np.array_equal(pairwise_preference_matrix(votes), expected)

    def test_mismatched_lengths_raise(self):
        from repro.exceptions import LengthMismatchError

        with pytest.raises(LengthMismatchError):
            pairwise_preference_matrix([identity(4), identity(5)])
        with pytest.raises(LengthMismatchError):
            total_kendall_tau(identity(4), [identity(4), identity(5)])

    def test_total_kt_empty_votes_is_zero(self):
        assert total_kendall_tau(identity(5), []) == 0

    def test_borda_scores_match_per_ranking_loop(self, noisy_votes):
        _, votes = noisy_votes
        n = 6
        expected = np.zeros(n, dtype=np.float64)
        for r in votes:
            expected += (n - 1) - r.positions
        assert np.array_equal(borda_scores(votes), expected)


class TestBordaCopeland:
    def test_borda_recovers_consensus(self, noisy_votes):
        center, votes = noisy_votes
        assert borda_aggregate(votes) == center

    def test_copeland_recovers_consensus(self, noisy_votes):
        center, votes = noisy_votes
        assert copeland_aggregate(votes) == center

    def test_borda_scores_shape(self, noisy_votes):
        _, votes = noisy_votes
        assert borda_scores(votes).shape == (6,)

    def test_single_vote_identity(self):
        r = random_ranking(5, seed=2)
        assert borda_aggregate([r]) == r
        assert copeland_aggregate([r]) == r


class TestKemeny:
    def test_exact_is_optimal(self, noisy_votes):
        _, votes = noisy_votes
        best = kemeny_aggregate_exact(votes)
        best_cost = total_kendall_tau(best, votes)
        for cand in all_perms(6):
            assert total_kendall_tau(cand, votes) >= best_cost

    def test_exact_guards_large_n(self):
        votes = [identity(12)]
        with pytest.raises(ValueError):
            kemeny_aggregate_exact(votes)

    def test_kwiksort_reasonable(self, noisy_votes):
        _, votes = noisy_votes
        exact_cost = total_kendall_tau(kemeny_aggregate_exact(votes), votes)
        approx = kwiksort_aggregate(votes, seed=0)
        # Expected 11/7-approximation; allow 2x for one seeded run.
        assert total_kendall_tau(approx, votes) <= 2 * exact_cost

    def test_kwiksort_valid_permutation(self, noisy_votes):
        _, votes = noisy_votes
        out = kwiksort_aggregate(votes, seed=5)
        assert sorted(out.order.tolist()) == list(range(6))

    def test_empty_votes(self):
        with pytest.raises(ValueError):
            kemeny_aggregate_exact([])
        with pytest.raises(ValueError):
            kwiksort_aggregate([])

    def test_exact_rejects_mismatched_lengths(self):
        # Regression: lengths are now validated before the preference
        # matrix is built (and before the factorial-size gate).
        from repro.exceptions import LengthMismatchError

        with pytest.raises(LengthMismatchError):
            kemeny_aggregate_exact([identity(4), identity(5)])
        with pytest.raises(LengthMismatchError):
            kemeny_aggregate_exact([identity(4), identity(12)])

    def test_kwiksort_survives_pathological_pivot_chains(self):
        """Regression: all-left/all-right partitions used to recurse n deep
        and overflow the interpreter stack for large n."""
        from repro.aggregation.kemeny import _kwiksort

        class _AlwaysFirst:
            def integers(self, lo, hi):
                return lo

        n = 5000  # far beyond the default recursion limit
        w = np.triu(np.ones((n, n), dtype=np.int64), k=1)  # i before j iff i < j
        ordered = _kwiksort(list(range(n)), w, _AlwaysFirst())
        assert ordered == list(range(n))

    def test_kwiksort_seeded_outputs_match_recursive_reference(self):
        """The explicit-stack rewrite draws pivots in the recursive order,
        so seeded outputs are unchanged."""
        from repro.aggregation.kemeny import _kwiksort
        from repro.aggregation.pairwise import pairwise_preference_matrix

        def recursive(items, w, rng):
            if len(items) <= 1:
                return items
            pivot = items[int(rng.integers(0, len(items)))]
            left = [i for i in items if i != pivot and w[i, pivot] > w[pivot, i]]
            right = [i for i in items if i != pivot and w[i, pivot] <= w[pivot, i]]
            return recursive(left, w, rng) + [pivot] + recursive(right, w, rng)

        center = random_ranking(9, seed=4)
        votes = sample_mallows(center, theta=0.8, m=15, seed=6)
        w = pairwise_preference_matrix(votes)
        for seed in range(5):
            got = _kwiksort(
                list(range(9)), w, np.random.default_rng(seed)
            )
            expected = recursive(
                list(range(9)), w, np.random.default_rng(seed)
            )
            assert got == expected


class TestFairPipeline:
    def test_mallows_postprocessor(self, noisy_votes):
        _, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        pipeline = FairAggregationPipeline(MallowsFairRanking(1.0, 5))
        result = pipeline.aggregate(votes, groups=ga, seed=0)
        assert len(result.ranking) == 6
        assert "consensus_total_kt" in result.metadata
        assert "output_total_kt" in result.metadata

    def test_attribute_aware_postprocessor_enforces_floors(self, noisy_votes):
        _, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        fc = FairnessConstraints.proportional(ga)
        pipeline = FairAggregationPipeline(DetConstSort())
        result = pipeline.aggregate(votes, groups=ga, constraints=fc, seed=0)
        assert lower_violations(result.ranking, ga, fc) == 0

    def test_surrogate_scores_follow_consensus(self, noisy_votes):
        center, votes = noisy_votes
        ga = GroupAssignment(["a", "b"] * 3)
        # High theta: post-processing stays at the consensus.
        pipeline = FairAggregationPipeline(MallowsFairRanking(50.0, 1))
        result = pipeline.aggregate(votes, groups=ga, seed=0)
        assert result.ranking == center

    def test_custom_aggregator(self, noisy_votes):
        _, votes = noisy_votes
        pipeline = FairAggregationPipeline(
            MallowsFairRanking(50.0, 1), aggregator=copeland_aggregate
        )
        result = pipeline.aggregate(votes, seed=0)
        assert result.ranking == copeland_aggregate(votes)

    def test_empty_votes(self):
        pipeline = FairAggregationPipeline(MallowsFairRanking(1.0))
        with pytest.raises(ValueError):
            pipeline.aggregate([])
