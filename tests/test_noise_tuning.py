"""Tests for constraint-noise helpers and dispersion tuning."""

import numpy as np
import pytest

from repro.algorithms.criteria import batch_infeasible_index
from repro.algorithms.noise import integer_bounds, noisy_count_bounds
from repro.algorithms.tuning import (
    tune_theta_for_infeasible_index,
    tune_theta_for_ndcg,
)
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts


@pytest.fixture
def ga10():
    return GroupAssignment(["a"] * 5 + ["b"] * 5)


class TestNoisyBounds:
    def test_sigma_zero_exact(self, ga10):
        fc = FairnessConstraints.proportional(ga10)
        lower, upper = noisy_count_bounds(fc, 10, 0.0, seed=0)
        lo_m, up_m = fc.count_bounds_matrix(10)
        assert np.array_equal(lower, lo_m.astype(float))
        assert np.array_equal(upper, up_m.astype(float))

    def test_noise_only_relaxes(self, ga10):
        fc = FairnessConstraints.proportional(ga10)
        lo_m, up_m = fc.count_bounds_matrix(10)
        for s in range(10):
            lower, upper = noisy_count_bounds(fc, 10, 1.0, seed=s)
            assert np.all(lower <= lo_m)
            assert np.all(upper >= up_m)

    def test_reproducible(self, ga10):
        fc = FairnessConstraints.proportional(ga10)
        a = noisy_count_bounds(fc, 10, 1.0, seed=3)
        b = noisy_count_bounds(fc, 10, 1.0, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_negative_sigma(self, ga10):
        fc = FairnessConstraints.proportional(ga10)
        with pytest.raises(ValueError):
            noisy_count_bounds(fc, 10, -1.0)

    def test_integer_bounds_tightest(self):
        lower = np.array([[0.3, -0.7]])
        upper = np.array([[1.9, 2.0]])
        lo, hi = integer_bounds(lower, upper)
        assert lo.tolist() == [[1, 0]]  # ceil, clamped at 0
        assert hi.tolist() == [[1, 2]]

    def test_integer_bounds_exact_integers_stable(self):
        lower = np.array([[2.0]])
        upper = np.array([[3.0]])
        lo, hi = integer_bounds(lower, upper)
        assert lo.tolist() == [[2]] and hi.tolist() == [[3]]


class TestTuneNdcg:
    def test_monotone_target_monotone_theta(self):
        scores = np.linspace(1.0, 0.1, 10)
        center = Ranking(np.arange(10))
        t_low = tune_theta_for_ndcg(center, scores, 0.90, m=150, seed=0)
        t_high = tune_theta_for_ndcg(center, scores, 0.99, m=150, seed=0)
        assert t_low <= t_high

    def test_achieves_target(self):
        scores = np.linspace(1.0, 0.1, 10)
        center = Ranking(np.arange(10))
        theta = tune_theta_for_ndcg(center, scores, 0.95, m=300, seed=1)
        orders = sample_mallows_batch(center, theta, 2000, seed=2)
        disc = position_discounts(10)
        mean_ndcg = (scores[orders] * disc[None, :]).sum(axis=1).mean() / idcg(scores, 10)
        assert mean_ndcg >= 0.95 - 0.02  # sampled bisection tolerance

    def test_trivial_target_zero_theta(self):
        scores = np.zeros(6)
        center = Ranking(np.arange(6))
        # Any ranking of zero-score items has NDCG 1: theta 0 suffices.
        assert tune_theta_for_ndcg(center, scores, 0.5, m=50, seed=0) == 0.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            tune_theta_for_ndcg(Ranking([0, 1]), np.ones(2), 0.0)
        with pytest.raises(ValueError):
            tune_theta_for_ndcg(Ranking([0, 1]), np.ones(2), 1.5)


class TestTuneInfeasibleIndex:
    def test_unfair_center_needs_noise(self, ga10):
        # Segregated centre: achieving a small expected II forces small theta.
        center = Ranking(np.concatenate([np.arange(0, 10, 2), np.arange(1, 10, 2)]))
        fc = FairnessConstraints.proportional(ga10)
        theta = tune_theta_for_infeasible_index(
            center, ga10, target_ii=6.0, constraints=fc, m=150, seed=0
        )
        orders = sample_mallows_batch(center, theta, 1500, seed=1)
        mean_ii = batch_infeasible_index(orders, ga10, fc).mean()
        assert mean_ii <= 6.0 + 0.8

    def test_fair_center_allows_huge_theta(self, ga10):
        # Interleave the blocked groups: II = 0.
        center = Ranking([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        theta = tune_theta_for_infeasible_index(
            center, ga10, target_ii=1.0, m=100, seed=0
        )
        assert theta >= 10.0

    def test_impossible_target_returns_zero(self, ga10):
        # Target below what even uniform noise achieves.
        center = Ranking(np.concatenate([np.arange(0, 10, 2), np.arange(1, 10, 2)]))
        theta = tune_theta_for_infeasible_index(
            center, ga10, target_ii=0.0, m=100, seed=0
        )
        assert theta == 0.0

    def test_invalid_target(self, ga10):
        with pytest.raises(ValueError):
            tune_theta_for_infeasible_index(Ranking(np.arange(10)), ga10, -1.0)
