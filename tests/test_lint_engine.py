"""Tests for :mod:`repro.analysis` — the engine, the REP rules (fixture
driven, asserted by rule id and line number), and the reporters.

Fixture protocol: each file under ``tests/lint_fixtures/`` is linted as
the module named in ``FIXTURE_MODULES``; every line carrying an
``# expect: REPnnn[, REPnnn...]`` tag must produce exactly those active
findings at that line, and no other line may produce any.
"""

import json
import os
import re

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    LintEngine,
    STALE_RULE_ID,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_ids,
)
from repro.analysis.engine import module_name_for

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "lint_fixtures")

#: Fixture file -> the module each is linted *as* (contract scoping).
FIXTURE_MODULES = {
    "rep001_violation.py": "repro.fairness.fixture",
    "rep001_ok.py": "repro.fairness.fixture",
    "rep002_violation.py": "repro.serve.core",
    "rep002_ok.py": "repro.serve.core",
    "rep003_violation.py": "repro.serve.handler",
    "rep003_ok.py": "repro.serve.handler",
    "rep004_violation.py": "repro.batch.kernels",
    "rep004_ok.py": "repro.batch.kernels",
    "rep005_violation.py": "repro.experiments.new_exp",
    "rep005_ok.py": "repro.experiments.new_exp",
    "rep006_violation.py": "repro.engine.newmod",
    "rep006_ok.py": "repro.engine.newmod",
    "rep007_violation.py": "repro.batch.schedule",
    "rep007_ok.py": "repro.batch.schedule",
    "rep008_violation.py": "repro.faults.fixture",
    "rep008_ok.py": "repro.faults.fixture",
    "rep009_violation.py": "repro.serve.core",
    "rep009_ok.py": "repro.serve.core",
    "rep010_violation.py": "repro.serve.handler",
    "rep010_ok.py": "repro.serve.handler",
    "rep011_violation.py": "repro.batch.schedule",
    "rep011_ok.py": "repro.batch.schedule",
    "suppressed.py": "repro.engine.newmod",
}

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)")


def expected_findings(path):
    """``{(rule, line), ...}`` parsed from a fixture's expect tags."""
    expected = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            match = _EXPECT_RE.search(line)
            if match:
                for rule in match.group("rules").split(","):
                    expected.append((rule.strip(), lineno))
    return sorted(expected)


def lint_fixture(name, config=None):
    path = os.path.join(FIXTURE_DIR, name)
    engine = LintEngine(config)
    return engine.lint_file(path, module=FIXTURE_MODULES[name]), path


class TestFixtures:
    """Every REP rule: true positives and true negatives, by id + line."""

    @pytest.mark.parametrize("name", sorted(FIXTURE_MODULES))
    def test_fixture_matches_expectations(self, name):
        result, path = lint_fixture(name)
        assert not result.errors, result.errors
        actual = sorted((f.rule, f.line) for f in result.active)
        assert actual == expected_findings(path)

    @pytest.mark.parametrize(
        "name",
        [n for n in FIXTURE_MODULES if n.endswith("_ok.py")],
    )
    def test_ok_fixtures_are_clean(self, name):
        result, _ = lint_fixture(name)
        assert result.clean
        assert result.findings == ()

    def test_every_rule_has_positive_and_negative_fixture(self):
        covered = set()
        for name in FIXTURE_MODULES:
            path = os.path.join(FIXTURE_DIR, name)
            for rule, _ in expected_findings(path):
                covered.add(rule)
        for rule_id in rule_ids():
            assert rule_id in covered, f"no true-positive fixture for {rule_id}"
            assert os.path.exists(
                os.path.join(
                    FIXTURE_DIR, f"{rule_id.lower()}_ok.py"
                )
            ) or rule_id == STALE_RULE_ID, f"no true-negative fixture for {rule_id}"


class TestScoping:
    """The same code outside a rule's contract scope is not a finding."""

    @pytest.mark.parametrize(
        "name, out_of_scope_module",
        [
            ("rep001_violation.py", "repro.experiments.driver"),
            ("rep002_violation.py", "repro.serve.server"),
            ("rep003_violation.py", "repro.batch.kernels"),
            ("rep004_violation.py", "repro.engine.core"),
            ("rep005_violation.py", "repro.engine.registry"),
            ("rep006_violation.py", "repro.fairness.checks"),
            ("rep007_violation.py", "repro.rankings.sorting"),
            # repro.experiments.driver: a seeded entry point (RNG fine)
            # that is not clock-free, so neither REP009 arm applies.
            ("rep009_violation.py", "repro.experiments.driver"),
            ("rep010_violation.py", "repro.batch.kernels"),
            ("rep011_violation.py", "repro.rankings.sorting"),
        ],
    )
    def test_out_of_scope_is_clean(self, name, out_of_scope_module):
        path = os.path.join(FIXTURE_DIR, name)
        result = LintEngine().lint_file(path, module=out_of_scope_module)
        assert result.active == ()

    def test_prefix_matching_respects_boundaries(self):
        # repro.served is not under repro.serve: REP002 must not fire.
        source = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert lint_source(source, module="repro.served.x").clean
        flagged = lint_source(source, module="repro.serve.core")
        assert [(f.rule, f.line) for f in flagged.active] == [("REP002", 4)]


class TestEngine:
    def test_registry_mirrors_engine_registry_shape(self):
        ids = rule_ids()
        assert ids == tuple(sorted(ids))
        assert {"REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
                "REP007"} <= set(ids)
        for rule in iter_rules():
            assert rule.id and rule.summary and rule.rationale
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("REP999")

    def test_select_and_ignore(self):
        path = os.path.join(FIXTURE_DIR, "rep001_violation.py")
        only_rng = LintEngine(DEFAULT_CONFIG.with_rules(select=("REP001",)))
        result = only_rng.lint_file(path, module="repro.fairness.fixture")
        assert {f.rule for f in result.active} == {"REP001"}
        none = LintEngine(DEFAULT_CONFIG.with_rules(ignore=("REP001",)))
        result = none.lint_file(path, module="repro.fairness.fixture")
        assert result.active == ()

    def test_module_name_for_walks_packages(self):
        assert (
            module_name_for(os.path.join("src", "repro", "serve", "core.py"))
            == "repro.serve.core"
        )
        assert (
            module_name_for(os.path.join("src", "repro", "__init__.py"))
            == "repro"
        )
        # No __init__ chain: scope-neutral stem.
        assert module_name_for(
            os.path.join(FIXTURE_DIR, "rep001_ok.py")
        ) == "rep001_ok"

    def test_import_alias_resolution(self):
        source = (
            "import numpy.random as npr\n"
            "def f():\n"
            "    return npr.default_rng(3)\n"
        )
        result = lint_source(source, module="repro.rankings.x")
        assert [(f.rule, f.line) for f in result.active] == [("REP001", 3)]

    def test_syntax_error_is_a_lint_error(self):
        result = lint_source("def broken(:\n", path="bad.py")
        assert not result.clean
        assert result.errors[0].path == "bad.py"
        assert "syntax error" in result.errors[0].message

    def test_lint_paths_walks_sorted_and_merges(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / "note.txt").write_text("not python\n")
        result = lint_paths([str(tmp_path)])
        assert result.files == 2
        assert result.clean

    def test_src_tree_is_lint_clean(self):
        """The acceptance gate, self-hosted: zero unsuppressed findings."""
        src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        result = lint_paths([src])
        assert result.errors == ()
        assert result.active == (), render_text(result)
        # The justified suppressions documented in README stay justified:
        # every one of them still matches a real finding (none stale).
        assert all(f.rule != STALE_RULE_ID for f in result.findings)


class TestReporters:
    def _result(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
            "def g():\n"
            "    return time.monotonic()  # repro: noqa[REP002] fixture\n"
        )
        return lint_source(source, path="core.py", module="repro.serve.core")

    def test_text_report_lists_location_rule_message(self):
        text = render_text(self._result())
        # Columns are 1-based in the text report (editor convention);
        # the AST's 0-based col 11 renders as 12.
        assert "core.py:3:12: REP002" in text
        assert "1 finding" in text and "(1 suppressed" in text
        assert "monotonic" not in text  # suppressed hidden by default

    def test_text_report_can_show_suppressed(self):
        text = render_text(self._result(), show_suppressed=True)
        assert "(suppressed)" in text

    def test_json_report_schema_and_determinism(self):
        result = self._result()
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["counts"] == {
            "active": 1, "suppressed": 1, "errors": 0,
        }
        [active] = [f for f in payload["findings"] if not f["suppressed"]]
        assert (active["rule"], active["line"]) == ("REP002", 3)
        assert render_json(result) == render_json(self._result())
