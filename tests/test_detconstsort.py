"""Tests for the DetConstSort baseline."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.detconstsort import DetConstSort
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index, lower_violations
from repro.groups.attributes import GroupAssignment
from repro.rankings.quality import ndcg


@pytest.fixture
def balanced_problem(two_groups_10, rng):
    return FairRankingProblem.from_scores(rng.random(10), two_groups_10)


class TestVanilla:
    def test_valid_permutation(self, balanced_problem):
        result = DetConstSort().rank(balanced_problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(10))

    def test_satisfies_minimums(self, balanced_problem, two_groups_10):
        # DetConstSort enforces the floor ⌊p_g·k⌋ at every prefix.
        result = DetConstSort().rank(balanced_problem, seed=0)
        fc = FairnessConstraints.proportional(two_groups_10)
        assert lower_violations(result.ranking, two_groups_10, fc) == 0

    def test_deterministic_without_noise(self, balanced_problem):
        a = DetConstSort().rank(balanced_problem, seed=1)
        b = DetConstSort().rank(balanced_problem, seed=2)
        assert a.ranking == b.ranking

    def test_respects_within_group_score_order(self, balanced_problem, two_groups_10):
        result = DetConstSort().rank(balanced_problem, seed=0)
        pos = result.ranking.positions
        scores = balanced_problem.scores
        for gi in range(2):
            members = np.flatnonzero(two_groups_10.indices == gi)
            by_pos = members[np.argsort(pos[members])]
            assert np.all(np.diff(scores[by_pos]) <= 0)

    def test_already_fair_input_high_ndcg(self, two_groups_10):
        # Alternating scores: score order is already fair, so DetConstSort
        # should essentially return the score-sorted ranking.
        scores = np.array([1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55])
        problem = FairRankingProblem.from_scores(scores, two_groups_10)
        result = DetConstSort().rank(problem, seed=0)
        assert ndcg(result.ranking, scores) > 0.99

    def test_skewed_groups(self, rng):
        ga = GroupAssignment(["a"] * 2 + ["b"] * 8)
        problem = FairRankingProblem.from_scores(rng.random(10), ga)
        result = DetConstSort().rank(problem, seed=0)
        fc = FairnessConstraints.proportional(ga)
        assert lower_violations(result.ranking, ga, fc) == 0

    def test_four_groups(self, rng):
        labels = sum([[f"g{i}"] * 5 for i in range(4)], [])
        ga = GroupAssignment(labels)
        problem = FairRankingProblem.from_scores(rng.random(20), ga)
        result = DetConstSort().rank(problem, seed=0)
        fc = FairnessConstraints.proportional(ga)
        assert lower_violations(result.ranking, ga, fc) == 0

    def test_explicit_target_proportions(self, balanced_problem):
        alg = DetConstSort(target_proportions=np.array([0.5, 0.5]))
        result = alg.rank(balanced_problem, seed=0)
        assert len(result.ranking) == 10

    def test_wrong_proportions_size(self, balanced_problem):
        alg = DetConstSort(target_proportions=np.array([1.0]))
        with pytest.raises(ValueError):
            alg.rank(balanced_problem, seed=0)

    def test_requires_groups_and_scores(self):
        problem = FairRankingProblem.from_scores(np.ones(4))
        with pytest.raises(ValueError):
            DetConstSort().rank(problem, seed=0)


class TestNoisy:
    def test_noise_changes_output(self, balanced_problem):
        vanilla = DetConstSort().rank(balanced_problem, seed=0)
        outputs = {
            DetConstSort(noise_sigma=2.0).rank(balanced_problem, seed=s).ranking
            for s in range(10)
        }
        assert len(outputs) > 1 or vanilla.ranking not in outputs

    def test_noise_degrades_fairness_on_average(self, rng):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        fc = FairnessConstraints.proportional(ga)
        scores = np.concatenate([rng.random(5) * 0.4, rng.random(5) * 0.4 + 0.6])
        problem = FairRankingProblem.from_scores(scores, ga)
        clean_ii = infeasible_index(
            DetConstSort().rank(problem, seed=0).ranking, ga, fc
        )
        noisy_iis = [
            infeasible_index(
                DetConstSort(noise_sigma=2.0).rank(problem, seed=s).ranking, ga, fc
            )
            for s in range(20)
        ]
        assert np.mean(noisy_iis) >= clean_ii

    def test_noisy_still_valid_permutation(self, balanced_problem):
        for s in range(5):
            r = DetConstSort(noise_sigma=3.0).rank(balanced_problem, seed=s)
            assert sorted(r.ranking.order.tolist()) == list(range(10))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            DetConstSort(noise_sigma=-1.0)

    def test_name_reflects_noise(self):
        assert "sigma" in DetConstSort(noise_sigma=1.0).name
        assert "sigma" not in DetConstSort().name
