"""Tests for the generic CSV ranking-dataset loader."""

import numpy as np
import pytest

from repro.datasets.csv_loader import (
    RankingDataset,
    load_ranking_csv,
    save_ranking_csv,
)
from repro.exceptions import DatasetError
from repro.groups.attributes import GroupAssignment

CSV = """score,sex,age
0.9,f,<35
0.5,m,<35
0.7,f,>=35
0.3,m,>=35
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV)
    return str(path)


class TestLoad:
    def test_basic(self, csv_path):
        ds = load_ranking_csv(csv_path, "score", ["sex", "age"])
        assert ds.n_items == 4
        assert ds.scores.tolist() == [0.9, 0.5, 0.7, 0.3]
        assert ds.attributes["sex"].group_sizes.tolist() == [2, 2]

    def test_single_attribute(self, csv_path):
        ds = load_ranking_csv(csv_path, "score", ["sex"])
        assert set(ds.attributes) == {"sex"}

    def test_groups_accessor(self, csv_path):
        ds = load_ranking_csv(csv_path, "score", ["sex", "age"])
        assert ds.groups("sex").n_groups == 2
        combined = ds.groups("sex", "age")
        assert combined.n_groups == 4

    def test_groups_unknown_attribute(self, csv_path):
        ds = load_ranking_csv(csv_path, "score", ["sex"])
        with pytest.raises(DatasetError):
            ds.groups("age")
        with pytest.raises(DatasetError):
            ds.groups()

    def test_missing_column(self, csv_path):
        with pytest.raises(DatasetError):
            load_ranking_csv(csv_path, "nope", ["sex"])
        with pytest.raises(DatasetError):
            load_ranking_csv(csv_path, "score", ["nope"])

    def test_non_numeric_score(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("score,g\nabc,x\n")
        with pytest.raises(DatasetError):
            load_ranking_csv(str(path), "score", ["g"])

    def test_empty_attribute_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("score,g\n1.0,\n")
        with pytest.raises(DatasetError):
            load_ranking_csv(str(path), "score", ["g"])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("score,g\n")
        with pytest.raises(DatasetError):
            load_ranking_csv(str(path), "score", ["g"])

    def test_no_attribute_columns(self, csv_path):
        with pytest.raises(DatasetError):
            load_ranking_csv(csv_path, "score", [])

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("score;g\n1.5;x\n2.5;y\n")
        ds = load_ranking_csv(str(path), "score", ["g"], delimiter=";")
        assert ds.scores.tolist() == [1.5, 2.5]


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        ds = RankingDataset(
            scores=np.array([1.25, 3.5, 0.75]),
            attributes={
                "g": GroupAssignment(["a", "b", "a"]),
                "h": GroupAssignment(["x", "x", "y"]),
            },
        )
        path = str(tmp_path / "roundtrip.csv")
        save_ranking_csv(path, ds)
        loaded = load_ranking_csv(path, "score", ["g", "h"])
        assert loaded.scores.tolist() == ds.scores.tolist()
        assert loaded.attributes["g"] == ds.attributes["g"]
        assert loaded.attributes["h"] == ds.attributes["h"]


class TestEndToEnd:
    def test_csv_to_fair_ranking(self, csv_path):
        from repro import FairRankingProblem, MallowsFairRanking

        ds = load_ranking_csv(csv_path, "score", ["sex", "age"])
        problem = FairRankingProblem.from_scores(
            ds.scores, ds.groups("sex", "age")
        )
        result = MallowsFairRanking(1.0, 5).rank(problem, seed=0)
        assert len(result.ranking) == 4
