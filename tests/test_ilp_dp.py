"""Tests for the ILP and DP fair-ranking solvers: mutual agreement and
brute-force optimality."""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.dp import DpFairRanking, solve_group_dp
from repro.algorithms.ilp import IlpFairRanking
from repro.exceptions import InfeasibleProblemError
from repro.fairness.checks import is_fair
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.quality import dcg, ndcg
from tests.conftest import all_perms, fair_perms


def make_problem(scores, ga, fc=None):
    scores = np.asarray(scores, dtype=np.float64)
    fc = fc or FairnessConstraints.proportional(ga)
    return FairRankingProblem.from_scores(scores, ga, fc)


class TestDpOptimality:
    def test_matches_brute_force(self, rng):
        ga = GroupAssignment(["a", "a", "a", "b", "b", "b"])
        fc = FairnessConstraints.proportional(ga)
        feasible = fair_perms(6, ga, fc)
        for _ in range(6):
            scores = rng.random(6)
            problem = make_problem(scores, ga, fc)
            result = DpFairRanking().rank(problem)
            best = max(dcg(r, scores) for r in feasible)
            assert result.metadata["dcg"] == pytest.approx(best)
            assert dcg(result.ranking, scores) == pytest.approx(best)

    def test_three_groups_brute_force(self, rng):
        ga = GroupAssignment(["a", "a", "b", "b", "c", "c"])
        fc = FairnessConstraints.proportional(ga)
        feasible = fair_perms(6, ga, fc)
        assert feasible
        scores = rng.random(6)
        result = DpFairRanking().rank(make_problem(scores, ga, fc))
        best = max(dcg(r, scores) for r in feasible)
        assert result.metadata["dcg"] == pytest.approx(best)

    def test_output_is_fair(self, rng):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        fc = FairnessConstraints.proportional(ga)
        result = DpFairRanking().rank(make_problem(rng.random(10), ga, fc))
        assert is_fair(result.ranking, ga, fc)

    def test_unconstrained_recovers_score_order(self, rng):
        # With bounds [0, n] the optimum is the plain score-sorted ranking.
        ga = GroupAssignment(["a", "b"] * 4)
        fc = FairnessConstraints.from_rates([1.0, 1.0], [0.0, 0.0])
        scores = rng.random(8)
        result = DpFairRanking().rank(make_problem(scores, ga, fc))
        assert ndcg(result.ranking, scores) == pytest.approx(1.0)

    def test_infeasible_raises(self):
        ga = GroupAssignment(["a", "b"])
        fc = FairnessConstraints.from_rates([1.0, 1.0], [1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            DpFairRanking().rank(make_problem([1.0, 0.5], ga, fc))

    def test_negative_scores_supported(self):
        ga = GroupAssignment(["a", "b", "a", "b"])
        scores = np.array([-1.0, -2.0, -3.0, -4.0])
        result = DpFairRanking().rank(make_problem(scores, ga))
        feasible = fair_perms(4, ga, FairnessConstraints.proportional(ga))
        best = max(dcg(r, scores) for r in feasible)
        assert result.metadata["dcg"] == pytest.approx(best)

    def test_large_instance_fast(self, rng):
        labels = rng.choice(["a", "b", "c", "d"], size=100).tolist()
        ga = GroupAssignment(labels)
        result = DpFairRanking().rank(make_problem(rng.random(100), ga))
        assert len(result.ranking) == 100

    def test_solve_group_dp_direct(self, rng):
        ga = GroupAssignment(["a", "b"] * 3)
        fc = FairnessConstraints.proportional(ga)
        scores = rng.random(6)
        lower, upper = fc.count_bounds_matrix(6)
        order, value = solve_group_dp(scores, ga, lower, upper)
        assert value == pytest.approx(dcg(order, scores))


class TestIlpAgreement:
    def test_matches_dp_small(self, rng):
        ga = GroupAssignment(["a", "a", "b", "b"])
        scores = rng.random(4)
        problem = make_problem(scores, ga)
        r_ilp = IlpFairRanking().rank(problem)
        r_dp = DpFairRanking().rank(problem)
        assert r_ilp.metadata["dcg"] == pytest.approx(r_dp.metadata["dcg"])

    def test_matches_dp_medium(self, rng):
        labels = rng.choice(["a", "b", "c"], size=20).tolist()
        ga = GroupAssignment(labels)
        scores = rng.random(20)
        problem = make_problem(scores, ga)
        r_ilp = IlpFairRanking().rank(problem)
        r_dp = DpFairRanking().rank(problem)
        assert r_ilp.metadata["dcg"] == pytest.approx(r_dp.metadata["dcg"], rel=1e-9)

    def test_ilp_output_is_fair(self, rng):
        ga = GroupAssignment(["a"] * 4 + ["b"] * 4)
        fc = FairnessConstraints.proportional(ga)
        result = IlpFairRanking().rank(make_problem(rng.random(8), ga, fc))
        assert is_fair(result.ranking, ga, fc)

    def test_ilp_infeasible_raises(self):
        ga = GroupAssignment(["a", "b"])
        fc = FairnessConstraints.from_rates([1.0, 1.0], [1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            IlpFairRanking().rank(make_problem([1.0, 0.5], ga, fc))

    def test_solver_metadata(self, rng):
        ga = GroupAssignment(["a", "b", "a", "b"])
        result = IlpFairRanking().rank(make_problem(rng.random(4), ga))
        assert result.metadata["solver_status"] == 0


class TestNoisyVariants:
    def test_noisy_dp_valid(self, rng):
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        problem = make_problem(rng.random(10), ga)
        for s in range(5):
            r = DpFairRanking(noise_sigma=1.0).rank(problem, seed=s)
            assert sorted(r.ranking.order.tolist()) == list(range(10))

    def test_noise_relaxes_never_tightens(self, rng):
        # Relaxed (one-sided noisy) bounds admit at least the exact optimum.
        ga = GroupAssignment(["a"] * 5 + ["b"] * 5)
        problem = make_problem(rng.random(10), ga)
        exact = DpFairRanking().rank(problem).metadata["dcg"]
        for s in range(10):
            noisy = DpFairRanking(noise_sigma=1.0).rank(problem, seed=s)
            assert noisy.metadata["dcg"] >= exact - 1e-9

    def test_noisy_ilp_matches_noisy_dp_same_seed(self, rng):
        # Same seed => same noise draw => same relaxed optimum.
        ga = GroupAssignment(["a", "a", "b", "b", "b", "a"])
        scores = rng.random(6)
        problem = make_problem(scores, ga)
        v_dp = DpFairRanking(noise_sigma=0.8).rank(problem, seed=7).metadata["dcg"]
        v_ilp = IlpFairRanking(noise_sigma=0.8).rank(problem, seed=7).metadata["dcg"]
        assert v_dp == pytest.approx(v_ilp, rel=1e-7)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            DpFairRanking(noise_sigma=-1)
        with pytest.raises(ValueError):
            IlpFairRanking(noise_sigma=-1)
