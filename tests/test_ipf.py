"""Tests for ApproxMultiValuedIPF: validity, fairness, footrule optimality."""

import itertools

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.ipf import ApproxMultiValuedIPF, feasible_position_intervals
from repro.exceptions import InfeasibleProblemError
from repro.fairness.checks import is_fair
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import footrule_distance
from repro.rankings.permutation import Ranking, random_ranking
from tests.conftest import fair_perms


@pytest.fixture
def segregated_problem():
    ga = GroupAssignment(["a"] * 3 + ["b"] * 3)
    base = Ranking([0, 1, 2, 3, 4, 5])  # all of group a first
    scores = np.linspace(1.0, 0.5, 6)
    return FairRankingProblem(
        base_ranking=base,
        scores=scores,
        groups=ga,
        constraints=FairnessConstraints.proportional(ga),
    )


class TestIntervals:
    def test_intervals_encode_bounds(self, segregated_problem):
        earliest, latest = feasible_position_intervals(
            segregated_problem.groups,
            segregated_problem.constraints,
            segregated_problem.base_ranking,
        )
        # First member of each group may start at the top.
        assert earliest[0] == 0 and earliest[3] == 0
        # With alpha=beta=1/2 the first member of each group must be placed
        # within the first two positions (floor at length 2 is 1).
        assert latest[0] == 1 and latest[3] == 1
        assert np.all(earliest <= latest)

    def test_infeasible_upper_detected(self):
        ga = GroupAssignment(["a", "b"])
        fc = FairnessConstraints.from_rates([0.0, 1.0], [0.0, 0.5])
        with pytest.raises(InfeasibleProblemError):
            feasible_position_intervals(ga, fc, Ranking([0, 1]))


class TestOutput:
    def test_valid_and_fair(self, segregated_problem):
        result = ApproxMultiValuedIPF().rank(segregated_problem, seed=0)
        assert sorted(result.ranking.order.tolist()) == list(range(6))
        assert infeasible_index(
            result.ranking, segregated_problem.groups, segregated_problem.constraints
        ) == 0

    def test_footrule_optimal_vs_brute_force(self):
        # Among all strongly fair rankings, IPF must achieve the minimum
        # footrule distance to the base ranking.
        ga = GroupAssignment(["a", "a", "a", "b", "b", "b"])
        fc = FairnessConstraints.proportional(ga)
        for seed in range(5):
            base = random_ranking(6, seed=seed)
            problem = FairRankingProblem(
                base_ranking=base, groups=ga, constraints=fc
            )
            result = ApproxMultiValuedIPF().rank(problem, seed=0)
            best = min(
                footrule_distance(r, base) for r in fair_perms(6, ga, fc)
            )
            assert footrule_distance(result.ranking, base) == best

    def test_fair_base_returned_unchanged(self):
        ga = GroupAssignment(["a", "b", "a", "b"])
        base = Ranking([0, 1, 2, 3])  # alternating, already fair
        problem = FairRankingProblem(
            base_ranking=base, groups=ga,
            constraints=FairnessConstraints.proportional(ga),
        )
        result = ApproxMultiValuedIPF().rank(problem, seed=0)
        assert result.ranking == base
        assert result.metadata["footrule_to_base"] == 0

    def test_within_group_order_preserved(self, segregated_problem):
        result = ApproxMultiValuedIPF().rank(segregated_problem, seed=0)
        base_pos = segregated_problem.base_ranking.positions
        pos = result.ranking.positions
        for gi in range(2):
            members = np.flatnonzero(segregated_problem.groups.indices == gi)
            by_out = members[np.argsort(pos[members])]
            assert np.all(np.diff(base_pos[by_out]) > 0)

    def test_three_groups(self, rng):
        ga = GroupAssignment(["a"] * 3 + ["b"] * 3 + ["c"] * 3)
        base = random_ranking(9, seed=1)
        problem = FairRankingProblem(
            base_ranking=base, groups=ga,
            constraints=FairnessConstraints.proportional(ga),
        )
        result = ApproxMultiValuedIPF().rank(problem, seed=0)
        assert is_fair(result.ranking, ga, problem.constraints)

    def test_metadata_footrule_correct(self, segregated_problem):
        result = ApproxMultiValuedIPF().rank(segregated_problem, seed=0)
        assert result.metadata["footrule_to_base"] == footrule_distance(
            result.ranking, segregated_problem.base_ranking
        )

    def test_requires_groups(self):
        problem = FairRankingProblem(base_ranking=Ranking([0, 1]))
        with pytest.raises(ValueError):
            ApproxMultiValuedIPF().rank(problem)


class TestNoisy:
    def test_noisy_output_valid(self, segregated_problem):
        for s in range(5):
            r = ApproxMultiValuedIPF(noise_sigma=1.0).rank(segregated_problem, seed=s)
            assert sorted(r.ranking.order.tolist()) == list(range(6))

    def test_noisy_still_fair(self, segregated_problem):
        # Weight noise changes the matching but not the feasible intervals,
        # so the output stays fair.
        for s in range(5):
            r = ApproxMultiValuedIPF(noise_sigma=2.0).rank(segregated_problem, seed=s)
            assert infeasible_index(
                r.ranking, segregated_problem.groups, segregated_problem.constraints
            ) == 0

    def test_noise_perturbs_matching(self):
        ga = GroupAssignment(["a"] * 4 + ["b"] * 4)
        base = random_ranking(8, seed=2)
        problem = FairRankingProblem(
            base_ranking=base, groups=ga,
            constraints=FairnessConstraints.proportional(ga),
        )
        outputs = {
            ApproxMultiValuedIPF(noise_sigma=5.0).rank(problem, seed=s).ranking
            for s in range(15)
        }
        assert len(outputs) > 1

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ApproxMultiValuedIPF(noise_sigma=-0.1)
