"""REP005 true negatives: the registry path.

Linted as ``repro.experiments.new_exp`` — same scope as the violations.
"""

from repro.engine import make_algorithm


def build_through_the_registry(theta):
    return make_algorithm("mallows", theta=theta, n_samples=50)


def by_name(name, **params):
    return make_algorithm(name, **params)
