"""REP010 true negatives: async bodies that never block the loop.

Linted as ``repro.serve.handler``.  Pure sync helpers are fine to call
inline; awaited edges are fine (the callee is analyzed on its own
terms); and a blocking helper that only sync code calls is the sync
world's business.
"""

import asyncio
import time


def compute(x):
    return x * 2


async def handle(request):
    return compute(request)


async def pause():
    await asyncio.sleep(0.01)


async def flow():
    return await pause()


def blocking_probe():
    time.sleep(0.01)


def sync_caller():
    return blocking_probe()
