"""REP007 true positives: invisible failures in worker-executed code.

Linted as ``repro.batch.schedule`` (worker-executed).
"""


def run_unit(fn, seed, payload):
    try:
        return fn(seed, *payload)
    except:  # expect: REP007
        return None


def initializer(state):
    try:
        state.setup()
    except Exception:  # expect: REP007
        pass


def probe(worker):
    try:
        worker.ping()
    except OSError:  # expect: REP007
        ...
