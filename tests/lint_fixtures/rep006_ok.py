"""REP006 true negatives: sorted wrapping, order-insensitive consumers,
and sequences (lists iterate in a locally provable order).

Linted as ``repro.engine.newmod`` — same scope as the violations.
"""


def hash_results(results: dict, h):
    for key, value in sorted(results.items()):
        h.update(repr((key, value)).encode())


def collect_kinds(units):
    return sorted(u.kind for u in units)


def total_seconds(table: dict):
    return sum(entry for entry in table.values())


def over_a_sequence(units: list):
    for unit in units:
        yield unit.key
