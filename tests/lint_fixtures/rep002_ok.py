"""REP002 true negatives: transitions take an explicit ``now``.

Linted as ``repro.serve.core`` — same scope as the violations.
"""


def expire(waiters, now: float):
    return [w for w in waiters if w.deadline < now]


def next_event_at(queue, now: float):
    return min((t.deadline for t in queue), default=now)
