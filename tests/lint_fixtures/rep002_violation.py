"""REP002 true positives: clock reads in a sans-IO module.

Linted as ``repro.serve.core`` (a clock-free module).
"""

import time
from datetime import datetime
from time import monotonic


def expire(waiters):
    now = time.monotonic()  # expect: REP002
    return [w for w in waiters if w.deadline < now]


def stamp():
    return datetime.now()  # expect: REP002


def imported_name_resolves():
    return monotonic()  # expect: REP002
