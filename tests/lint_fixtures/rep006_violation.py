"""REP006 true positives: unordered iteration feeding a digest.

Linted as ``repro.engine.newmod`` (a digest-feeding module).
"""


def hash_results(results: dict, h):
    for key, value in results.items():  # expect: REP006
        h.update(repr((key, value)).encode())


def collect_kinds(units):
    kinds = {u.kind for u in units}
    for kind in kinds:  # hits the set() call below, not this name
        pass
    for kind in set(u.kind for u in units):  # expect: REP006
        yield kind


def labels_of(table: dict):
    return [label for label in table.keys()]  # expect: REP006


def from_literal():
    out = []
    for name in {"dp", "ipf", "mallows"}:  # expect: REP006
        out.append(name)
    return out
