"""REP009 true negatives: pure call chains in a clock-free module.

Linted as ``repro.serve.core``.  Values the contract cares about —
timestamps, generators — arrive as parameters and flow down the chain,
so no function inherits an effect; recursion over pure helpers must not
trip the fixpoint either.
"""

import numpy as np


def pure_rank(scores, now):
    return sorted(scores, reverse=True), now


def compose(scores, now):
    return pure_rank(scores, now)


def draw(rng: np.random.Generator, n):
    return rng.permutation(n)


def sample_with(rng):
    return draw(rng, 5)


def fold(values, acc=0):
    if not values:
        return acc
    return fold(values[1:], acc + values[0])


def seeded_types(entropy):
    seq = np.random.SeedSequence(entropy)
    return np.random.Generator(np.random.PCG64(seq))
