"""REP010 true positives: transitive blocking reached from ``async def``.

Linted as ``repro.serve.handler`` (the serving tier's async scope).  The
sleep lives in *sync* helpers, so per-module REP003 cannot see it; the
transitive rule flags the non-awaited call edges from the async bodies,
one and two hops up the chain.
"""

import time


def resolve_sync():
    time.sleep(0.01)


def relay():
    return resolve_sync()


async def handle(request):
    resolve_sync()  # expect: REP010
    return request


async def dispatch(request):
    relay()  # expect: REP010
    return request
