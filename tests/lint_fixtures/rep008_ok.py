"""REP008 true negatives: retries with a bound or an escape.

Linted as ``repro.faults.fixture`` — same scope as the violations.
"""


def resubmit_with_budget(pool, unit, max_attempts=3):
    for _attempt in range(max_attempts):
        try:
            return pool.run(unit)
        except OSError:
            continue
    raise RuntimeError("retry budget exhausted")


def rebuild_with_escape(pool, unit, max_rebuilds=2):
    rebuilds = 0
    while True:
        try:
            return pool.run(unit)
        except ConnectionError:
            rebuilds += 1
            if rebuilds > max_rebuilds:
                raise
            pool.rebuild()
            continue


def drain_stream(stream):
    # Not a retry loop at all: the handler terminates the loop.
    while True:
        try:
            item = next(stream)
        except StopIteration:
            break
        yield item


def supervise(pending, pool):
    # Bounded by the loop condition itself, not an escape statement.
    while pending:
        try:
            pending = pool.step(pending)
        except InterruptedError:
            continue
