"""REP001 true positives: global RNG use in compute code.

Linted as ``repro.fairness.fixture`` (not a seeded entry point).
"""

import random

import numpy as np


def fork_a_stream():
    rng = np.random.default_rng(42)  # expect: REP001
    return rng.uniform()


def mutate_global_state(n):
    np.random.seed(0)  # expect: REP001
    return np.random.rand(n)  # expect: REP001


def stdlib_draw():
    return random.random()  # expect: REP001
