"""REP003 true negatives: awaited async APIs, executor hops, and sync
helpers (a sync body may block — it runs off-loop).

Linted as ``repro.serve.handler`` — same scope as the violations.
"""

import asyncio
import functools
import time


async def handle(server, request):
    await asyncio.sleep(0.01)
    return await server.rank(request)


async def dispatch(loop, executor, engine, batch):
    fn = functools.partial(engine.rank_many_submit, batch)
    return await loop.run_in_executor(executor, fn)


def sync_helper(engine, request):
    time.sleep(0.01)
    return engine.rank(request)
