"""REP001 true negatives: randomness arrives as a parameter, and the
explicit-seeding types are constructible anywhere.

Linted as ``repro.fairness.fixture`` — same scope as the violations.
"""

import numpy as np


def seeded_compute(rng: np.random.Generator, n: int):
    return rng.permutation(n)


def spawn_children(seed):
    root = np.random.SeedSequence(seed)
    bit = np.random.PCG64(root)
    return np.random.Generator(bit)
