"""REP007 true negatives: precise handlers that route the failure.

Linted as ``repro.batch.schedule`` — same scope as the violations.
"""

import pickle


def run_unit_guarded(fn, seed, payload):
    try:
        return True, fn(seed, *payload)
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return False, exc


def cancel_rest(futures):
    try:
        yield from futures
    except BaseException:
        for i in sorted(futures):
            futures[i].cancel()
        raise
