"""REP003 true positives: blocking calls on the event loop.

Linted as ``repro.serve.handler`` (inside the serving tier).
"""

import subprocess
import time


async def handle(engine, request):
    time.sleep(0.01)  # expect: REP003
    response = engine.rank(request)  # expect: REP003
    return response


async def snapshot(engine, requests, path):
    fh = open(path)  # expect: REP003
    data = fh.read()
    fh.close()
    out = subprocess.run(["true"])  # expect: REP003
    return engine.rank_many(requests), data, out  # expect: REP003
