"""Suppression fixtures: justified markers, a blanket marker, a multi-rule
line, two stale markers, and markers naming rule ids that do not exist.

Linted as ``repro.engine.newmod`` (digest scope, not a seeded entry
point) — REP006/REP001 fire on the unsuppressed shapes, and the markers
silence or miss as tagged.
"""

import numpy as np


def justified(results: dict, h):
    for key, value in results.items():  # repro: noqa[REP006] hash is order-free
        h.update(repr((key, value)).encode())


def blanket(table: dict):
    return [k for k in table.keys()]  # repro: noqa


def multi_rule():
    out = []
    for x in set(np.random.default_rng(0).permutation(3)):  # repro: noqa[REP001, REP006] both fire here
        out.append(x)
    return out


def stale_markers(units: list):
    total = 0
    for unit in units:  # repro: noqa[REP006] stale: lists are ordered  # expect: REP000
        total += unit
    return total  # repro: noqa  # expect: REP000


def typo_marker(units: list):
    out = []
    for unit in units:  # repro: noqa[REP0O9] letter-O typo, suppresses nothing  # expect: REP000
        out.append(unit)
    return out


def typo_beside_real(table: dict):
    # The unknown id fires even though the REP006 half matched a finding.
    return [k for k in table.keys()]  # repro: noqa[REP006, REP0O1] half typo  # expect: REP000
