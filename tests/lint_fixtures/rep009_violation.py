"""REP009 true positives: indirect clock/RNG reach through call chains.

Linted as ``repro.serve.core`` (clock-free, and not a seeded entry
point).  The primitives themselves are REP001/REP002's findings; REP009
fires one level up, on the call edge the effect arrives through, and on
every function that inherits it — including through recursion (the
SCC-aware fixpoint grounds the self-loop) and mutual recursion.
"""

import time

import numpy as np


def read_clock():
    return time.monotonic()  # expect: REP002


def tick():
    return read_clock()  # expect: REP009


def fork_stream():
    return np.random.default_rng()  # expect: REP001


def sample():
    return fork_stream()  # expect: REP009


def countdown(n):
    if n > 0:
        return countdown(n - 1)
    return read_clock()  # expect: REP009


def ping(n):
    return pong(n)  # expect: REP009


def pong(n):
    if n > 0:
        return ping(n - 1)
    return read_clock()  # expect: REP009
