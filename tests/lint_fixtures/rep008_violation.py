"""REP008 true positives: unbounded retry loops in dispatch code.

Linted as ``repro.faults.fixture`` (worker-dispatch / retry scope).
"""

import itertools


def resubmit_forever(pool, unit):
    while True:  # expect: REP008
        try:
            return pool.run(unit)
        except OSError:
            continue


def spin_on_crash(pool, unit):
    while 1:  # expect: REP008
        try:
            return pool.run(unit)
        except ConnectionError:
            pool.rebuild()
            continue


def poll_until_served(server, request):
    for attempt in itertools.count():  # expect: REP008
        try:
            return server.submit(request, attempt=attempt)
        except TimeoutError:
            server.backoff(attempt)
            continue
