"""REP011 true negatives: picklable pool payloads and non-pool submits.

Linted as ``repro.batch.schedule``.  Module-level functions and plain
data cross the pickle boundary fine; ``server.submit`` / ``core.submit``
are admission calls, not pool dispatches, so their arguments are not
payloads at all.
"""


def submit_module_fn(executor, rows):
    return executor.submit(work, list(rows))


def submit_rebound(executor):
    fn = work
    return executor.submit(fn)


def unit_ok(key, seed):
    return WorkUnit(key=key, fn=work, seed=seed, payload=(1, 2))


def admission(server, request):
    return server.submit(request)


def core_admission(core, request):
    return core.submit(request)


def work(*args):
    return args
