"""REP004 true negatives: kernels reach memoization through
``active_cache()``; reading stats is not mutation.

Linted as ``repro.batch.kernels`` — same scope as the violations.
"""

from repro.batch.cache import DEFAULT_CACHE, active_cache


def violation_masks(constraints, n):
    lower32, upper32 = active_cache().violation_bounds32(constraints, n)
    return lower32, upper32


def report_effectiveness():
    return DEFAULT_CACHE.stats()
