"""REP004 true positives: cache construction/mutation outside the owners.

Linted as ``repro.batch.kernels`` (a kernel call site, not a cache owner).
"""

from repro.batch import cache
from repro.batch.cache import DEFAULT_CACHE, KernelCache


def private_cache_on_the_side():
    mine = KernelCache(8)  # expect: REP004
    return mine


def cold_path_hack():
    DEFAULT_CACHE.clear()  # expect: REP004
    cache.DEFAULT_CACHE.invalidate_marginals()  # expect: REP004


def swap_the_global():
    cache.DEFAULT_CACHE = KernelCache()  # expect: REP004, REP004
