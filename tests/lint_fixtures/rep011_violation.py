"""REP011 true positives: unpicklable payloads handed to the pool.

Linted as ``repro.batch.schedule`` (pool-submission scope).  Each shape
fails the pickle round-trip to a worker by construction: lambdas and
nested functions have no importable qualified name, generators hold
frame state, locks and open files hold OS handles.
"""

import threading


def submit_lambda(executor):
    return executor.submit(lambda: 1)  # expect: REP011


def submit_lock(executor, payload):
    lock = threading.Lock()
    return executor.submit(work, payload, lock)  # expect: REP011


def submit_genexp(executor, rows):
    return executor.submit(work, (r for r in rows))  # expect: REP011


def submit_closure(executor):
    def inner(x):
        return x + 1

    return executor.submit(inner, 1)  # expect: REP011


def unit_with_lambda(key):
    return WorkUnit(key=key, fn=lambda seed: seed, seed=0)  # expect: REP011


def unit_with_file(key, path):
    return WorkUnit(key=key, fn=run, payload=open(path))  # expect: REP011


def work(*args):
    return args


def run(payload):
    return payload
