"""REP005 true positives: legacy constructors bypassing the registry.

Linted as ``repro.experiments.new_exp`` (library code, not a factory).
"""

from repro.algorithms.dp import DpFairRanking
from repro.algorithms.mallows_postprocess import MallowsFairRanking

from repro import algorithms


def build_the_old_way(theta):
    algo = MallowsFairRanking(theta=theta, n_samples=50)  # expect: REP005
    return algo


def qualified_call():
    return algorithms.dp.DpFairRanking()  # expect: REP005


def local_alias():
    return DpFairRanking()  # expect: REP005
