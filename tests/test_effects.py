"""Tests for :mod:`repro.analysis.effects` — pass 2 of the project
analyzer: base-effect extraction, SCC-aware propagation, witnesses.
"""

import ast

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.effects import (
    BLOCKING,
    GLOBAL_RNG,
    UNBOUNDED_RETRY,
    UNORDERED_ITER,
    WALL_CLOCK,
    analyze_project,
    effect_for_call,
    summarize_module,
    summarize_source,
)
from repro.analysis.suppressions import find_suppressions


def propagate(modules: dict[str, str]):
    """``{module: source}`` → the propagated ProjectEffects (with the
    noqa markers in each source honoured, as in a real engine run)."""
    summaries = []
    for module, source in modules.items():
        summaries.append(
            summarize_module(
                ast.parse(source),
                module,
                f"{module}.py",
                suppressions=find_suppressions(source),
            )
        )
    return analyze_project(summaries, DEFAULT_CONFIG)


class TestEffectForCall:
    def test_primitive_table(self):
        assert effect_for_call("time.time") == WALL_CLOCK
        assert effect_for_call("datetime.datetime.now") == WALL_CLOCK
        assert effect_for_call("time.sleep") == BLOCKING
        assert effect_for_call("subprocess.run") == BLOCKING
        assert effect_for_call("numpy.random.default_rng") == GLOBAL_RNG
        assert effect_for_call("numpy.random.randint") == GLOBAL_RNG
        assert effect_for_call("random.random") == GLOBAL_RNG

    def test_seeding_types_and_pure_calls_are_clean(self):
        assert effect_for_call("numpy.random.SeedSequence") is None
        assert effect_for_call("numpy.random.Generator") is None
        assert effect_for_call("math.sqrt") is None
        assert effect_for_call("time.strftime") is None


class TestSummaries:
    def test_direct_call_effects_land_on_the_function(self):
        summary = summarize_source(
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
            "def g():\n"
            "    return 1\n",
            module="m",
        )
        effects = summary.effect_map()
        [source] = effects["m.f"]
        assert (source.effect, source.detail, source.line) == (
            WALL_CLOCK,
            "time.time",
            3,
        )
        assert "m.g" not in effects

    def test_structural_effects(self):
        summary = summarize_source(
            "def f(xs):\n"
            "    for x in set(xs):\n"
            "        pass\n"
            "def g():\n"
            "    while True:\n"
            "        try:\n"
            "            return work()\n"
            "        except Exception:\n"
            "            continue\n",
            module="m",
        )
        effects = summary.effect_map()
        assert [s.effect for s in effects["m.f"]] == [UNORDERED_ITER]
        assert [s.effect for s in effects["m.g"]] == [UNBOUNDED_RETRY]

    def test_noqa_on_the_primitive_line_blocks_seeding(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa[REP002] timing only\n"
        )
        summary = summarize_module(
            ast.parse(source),
            "m",
            "m.py",
            suppressions=find_suppressions(source),
        )
        assert summary.effect_map() == {}


class TestPropagation:
    def test_chain_and_witnesses(self):
        project = propagate(
            {
                "repro.serve.core": (
                    "import time\n"
                    "def helper():\n"
                    "    return time.time()\n"
                    "def caller():\n"
                    "    return helper()\n"
                    "def top():\n"
                    "    return caller()\n"
                )
            }
        )
        for fn in ("helper", "caller", "top"):
            assert project.has(f"repro.serve.core.{fn}", WALL_CLOCK)
        direct = project.witness("repro.serve.core.helper", WALL_CLOCK)
        assert (direct.kind, direct.detail) == ("direct", "time.time")
        inherited = project.witness("repro.serve.core.caller", WALL_CLOCK)
        assert (inherited.kind, inherited.detail) == (
            "call",
            "repro.serve.core.helper",
        )
        chain = project.chain("repro.serve.core.top", WALL_CLOCK)
        assert [w.kind for w in chain] == ["call", "call", "direct"]
        assert project.render_chain("repro.serve.core.top", WALL_CLOCK) == (
            "repro.serve.core.top → repro.serve.core.caller"
            " → repro.serve.core.helper → time.time"
        )

    def test_cross_module_propagation(self):
        project = propagate(
            {
                "repro.utils.timing": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
                "repro.fairness.metrics": (
                    "from repro.utils.timing import stamp\n"
                    "def score():\n"
                    "    return stamp()\n"
                ),
            }
        )
        assert project.has("repro.fairness.metrics.score", WALL_CLOCK)
        assert project.render_chain(
            "repro.fairness.metrics.score", WALL_CLOCK
        ).endswith("repro.utils.timing.stamp → time.time")

    def test_rng_absorbed_at_entry_points_wall_clock_not(self):
        project = propagate(
            {
                # repro.datasets.* is a seeded entry point: its RNG
                # construction is disciplined by contract.
                "repro.datasets.gen": (
                    "import time\n"
                    "import numpy as np\n"
                    "def make():\n"
                    "    return np.random.default_rng(0)\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
                "repro.fairness.metrics": (
                    "from repro.datasets.gen import make, stamp\n"
                    "def sample():\n"
                    "    return make()\n"
                    "def timed():\n"
                    "    return stamp()\n"
                ),
            }
        )
        # GLOBAL_RNG is absorbed inside the entry-point module ...
        assert not project.has("repro.datasets.gen.make", GLOBAL_RNG)
        assert not project.has("repro.fairness.metrics.sample", GLOBAL_RNG)
        # ... but WALL_CLOCK flows through it untouched.
        assert project.has("repro.datasets.gen.stamp", WALL_CLOCK)
        assert project.has("repro.fairness.metrics.timed", WALL_CLOCK)

    def test_suppressed_primitive_does_not_propagate(self):
        project = propagate(
            {
                "repro.serve.core": (
                    "import time\n"
                    "def helper():\n"
                    "    return time.time()  # repro: noqa[REP002] timing\n"
                    "def caller():\n"
                    "    return helper()\n"
                )
            }
        )
        assert not project.has("repro.serve.core.helper", WALL_CLOCK)
        assert not project.has("repro.serve.core.caller", WALL_CLOCK)

    def test_dynamic_edges_carry_no_effects(self):
        project = propagate(
            {
                "repro.serve.core": (
                    "def use(handlers, k):\n"
                    "    return handlers[k]()\n"
                )
            }
        )
        assert project.effects_of("repro.serve.core.use") == ()

    def test_scc_fixpoint_terminates_with_grounded_chains(self):
        project = propagate(
            {
                "repro.serve.core": (
                    "import time\n"
                    "def ping(n):\n"
                    "    return pong(n)\n"
                    "def pong(n):\n"
                    "    if n:\n"
                    "        return ping(n - 1)\n"
                    "    return time.time()\n"
                )
            }
        )
        for fn in ("ping", "pong"):
            qname = f"repro.serve.core.{fn}"
            assert project.has(qname, WALL_CLOCK)
            chain = project.chain(qname, WALL_CLOCK)
            # Finite and grounded: the last hop is always the primitive,
            # even though ping and pong sit in one SCC.
            assert chain[-1].kind == "direct"
            assert chain[-1].detail == "time.time"

    def test_effects_of_is_deterministically_ordered(self):
        project = propagate(
            {
                "repro.serve.core": (
                    "import time\n"
                    "def f():\n"
                    "    time.sleep(1)\n"
                    "    return time.time()\n"
                )
            }
        )
        assert project.effects_of("repro.serve.core.f") == (
            BLOCKING,
            WALL_CLOCK,
        )
