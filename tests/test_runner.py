"""Tests for the end-to-end experiment runner and report persistence."""

import os

from repro.experiments.reporting import write_reports
from repro.experiments.runner import PANELS, run_all


class TestRunAll:
    def test_fast_run_produces_all_artefacts(self):
        messages = []
        reports = run_all(fast=True, progress=messages.append)
        expected = {"fig1", "fig2", "fig3", "fig4", "table1"}
        for theta, sigma in PANELS:
            key = f"theta{theta:g}_sigma{sigma:g}"
            expected |= {f"fig5_{key}", f"fig6_{key}", f"fig7_{key}"}
        assert set(reports) == expected
        assert all(isinstance(text, str) and text for text in reports.values())
        assert messages  # progress callback invoked

    def test_reports_are_writable(self, tmp_path):
        reports = run_all(fast=True)
        paths = write_reports(reports, str(tmp_path / "artefacts"))
        assert len(paths) == len(reports) + 1
        for p in paths:
            assert os.path.getsize(p) > 0

    def test_panels_match_paper(self):
        assert PANELS == ((0.5, 0.0), (1.0, 0.0), (0.5, 1.0), (1.0, 1.0))
