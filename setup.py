"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable in offline environments that lack the
``wheel`` package required by PEP 660 editable builds
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
